package core

// Randomized equivalence tests for the allocation-free coverage kernel:
// every fast-path verdict (spatial CSR gather, guard-band cover test,
// O(m) sector occupancy, in-place max-gap) is compared against the
// brute-force O(n·m) oracles retained in the codebase —
// sensor.Network.ViewedDirections / CoveringIndices, geom.MaxCircularGap
// and sectorsAllOccupied — on heterogeneous networks whose radii span
// two orders of magnitude (0.002 … 0.2), plus zero-allocation proofs via
// testing.AllocsPerRun.

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// wideSpanProfile mixes radii 0.002, 0.02 and 0.2 — a 100× span — so
// the per-radius tiers of the spatial index all carry cameras and the
// tiny-radius groups exercise fine grid cells.
func wideSpanProfile(t *testing.T) sensor.Profile {
	t.Helper()
	profile, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.002, Aperture: math.Pi / 2},
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.02, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.2, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	return profile
}

// equivPoints mixes uniform points with points planted inside camera
// sectors: uniform samples almost never land within 0.002 of a
// small-radius camera, so without planting, the tiny tiers would only
// ever exercise the zero-coverage path.
func equivPoints(net *sensor.Network, r *rng.PCG, uniform int) []geom.Vec {
	pts := make([]geom.Vec, 0, uniform+net.Len())
	for i := 0; i < uniform; i++ {
		pts = append(pts, geom.V(r.Float64(), r.Float64()))
	}
	torus := net.Torus()
	for i := 0; i < net.Len(); i++ {
		cam := net.Camera(i)
		// A point at a random fraction of the radius, in a direction
		// jittered around the orientation so roughly half land inside
		// the sector and half just outside its angular boundary.
		dir := cam.Orient + (r.Float64()-0.5)*1.2*cam.Aperture
		d := geom.FromPolar(r.Float64()*1.05*cam.Radius, dir)
		pts = append(pts, torus.Translate(cam.Pos, d))
	}
	return pts
}

// bruteReport diagnoses p with the pre-kernel O(n) oracles only.
func bruteReport(t *testing.T, net *sensor.Network, theta float64, p geom.Vec) PointReport {
	t.Helper()
	necSectors, err := geom.AnchoredPartition(2 * theta)
	if err != nil {
		t.Fatal(err)
	}
	sufSectors, err := geom.AnchoredPartition(theta)
	if err != nil {
		t.Fatal(err)
	}
	dirs := net.ViewedDirections(p)
	necessary := sectorsAllOccupied(necSectors, dirs)
	sufficient := sectorsAllOccupied(sufSectors, dirs)
	gap, _ := geom.MaxCircularGap(dirs)
	return PointReport{
		NumCovering: len(net.CoveringIndices(p)),
		MaxGap:      gap,
		FullView:    len(dirs) > 0 && gap <= 2*theta,
		Necessary:   necessary,
		Sufficient:  sufficient,
	}
}

// TestKernelEquivalenceWideSpan compares every Checker verdict against
// the brute-force oracle on randomized heterogeneous networks with a
// 100× radius span. MaxGap must match bit-for-bit, not approximately:
// the kernel is designed to be bit-identical to the reference path.
func TestKernelEquivalenceWideSpan(t *testing.T) {
	profile := wideSpanProfile(t)
	thetas := []float64{0.15 * math.Pi, math.Pi / 4, math.Pi / 3}
	for seed := uint64(1); seed <= 4; seed++ {
		r := rng.New(seed, 7)
		net, err := deploy.Uniform(geom.UnitTorus, profile, 300, r)
		if err != nil {
			t.Fatal(err)
		}
		pts := equivPoints(net, r, 150)
		for _, theta := range thetas {
			checker, err := NewChecker(net, theta)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pts {
				want := bruteReport(t, net, theta, p)
				got := checker.Report(p)
				if got != want {
					t.Fatalf("seed %d θ=%.4f p=%v: Report = %+v, want %+v",
						seed, theta, p, got, want)
				}
				if fv := checker.FullViewCovered(p); fv != want.FullView {
					t.Fatalf("seed %d θ=%.4f p=%v: FullViewCovered = %v, want %v",
						seed, theta, p, fv, want.FullView)
				}
				if nec := checker.MeetsNecessary(p); nec != want.Necessary {
					t.Fatalf("seed %d θ=%.4f p=%v: MeetsNecessary = %v, want %v",
						seed, theta, p, nec, want.Necessary)
				}
				if suf := checker.MeetsSufficient(p); suf != want.Sufficient {
					t.Fatalf("seed %d θ=%.4f p=%v: MeetsSufficient = %v, want %v",
						seed, theta, p, suf, want.Sufficient)
				}
				if n := checker.CoverageCount(p); n != want.NumCovering {
					t.Fatalf("seed %d θ=%.4f p=%v: CoverageCount = %d, want %d",
						seed, theta, p, n, want.NumCovering)
				}
			}
		}
	}
}

// TestMultiCheckerMatchesChecker pins the fused multi-θ evaluation to
// the per-θ Checker it replaces: one Evaluate call must reproduce every
// per-θ Report exactly, and FullViewCovered must agree with the
// Evaluate flags.
func TestMultiCheckerMatchesChecker(t *testing.T) {
	profile := wideSpanProfile(t)
	thetas := []float64{math.Pi / 6, 0.15 * math.Pi, math.Pi / 4, math.Pi / 3, math.Pi / 2}
	r := rng.New(42, 3)
	net, err := deploy.Uniform(geom.UnitTorus, profile, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiChecker(net, thetas)
	if err != nil {
		t.Fatal(err)
	}
	checkers := make([]*Checker, len(thetas))
	for i, theta := range thetas {
		if checkers[i], err = NewChecker(net, theta); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range equivPoints(net, r, 120) {
		rep := multi.Evaluate(p)
		if len(rep.PerTheta) != len(thetas) {
			t.Fatalf("PerTheta has %d entries, want %d", len(rep.PerTheta), len(thetas))
		}
		for i, theta := range thetas {
			want := checkers[i].Report(p)
			if rep.NumCovering != want.NumCovering || rep.MaxGap != want.MaxGap {
				t.Fatalf("θ=%.4f p=%v: shared fields (%d, %v), want (%d, %v)",
					theta, p, rep.NumCovering, rep.MaxGap, want.NumCovering, want.MaxGap)
			}
			pt := rep.PerTheta[i]
			if pt.Theta != theta || pt.FullView != want.FullView ||
				pt.Necessary != want.Necessary || pt.Sufficient != want.Sufficient {
				t.Fatalf("θ=%.4f p=%v: PerTheta = %+v, want %+v", theta, p, pt, want)
			}
		}
		fv := multi.FullViewCovered(p)
		for i := range thetas {
			if fv[i] != rep.PerTheta[i].FullView {
				t.Fatalf("p=%v θ index %d: FullViewCovered = %v, Evaluate says %v",
					p, i, fv[i], rep.PerTheta[i].FullView)
			}
		}
	}
}

// TestOccupancyMatchesOracle drives the O(m) bucketed occupancy test
// against the retained O(sectors·m) reference on randomized direction
// sets, including directions placed exactly on the j·w sector-boundary
// lattice where Contains decisions flip on a single ulp.
func TestOccupancyMatchesOracle(t *testing.T) {
	r := rng.New(9, 1)
	widths := []float64{
		2 * math.Pi, math.Pi, math.Pi / 2, math.Pi / 3, 0.3 * math.Pi,
		2 * math.Pi / 3, 0.9, 0.11, 2*math.Pi/7 + 1e-12,
	}
	for _, w := range widths {
		sectors, err := geom.AnchoredPartition(w)
		if err != nil {
			t.Fatal(err)
		}
		occ, err := newOccupancy(w)
		if err != nil {
			t.Fatal(err)
		}
		full, _ := geom.SplitCircle(w)
		for trial := 0; trial < 200; trial++ {
			m := r.Intn(3 * len(sectors))
			dirs := make([]float64, 0, m+4)
			for i := 0; i < m; i++ {
				switch r.Intn(4) {
				case 0:
					// Raw atan2 range (−π, π] — what viewedDirections yields.
					dirs = append(dirs, r.Float64()*2*math.Pi-math.Pi)
				case 1:
					dirs = append(dirs, r.Float64()*2*math.Pi)
				case 2:
					// Exactly on a sector-boundary lattice point.
					dirs = append(dirs, float64(r.Intn(full))*w)
				default:
					// One ulp around a lattice point.
					b := float64(r.Intn(full)) * w
					if r.Bool(0.5) {
						dirs = append(dirs, math.Nextafter(b, 7))
					} else {
						dirs = append(dirs, math.Nextafter(b, -7))
					}
				}
			}
			want := sectorsAllOccupied(sectors, dirs)
			if got := occ.allOccupied(dirs); got != want {
				t.Fatalf("w=%.6f dirs=%v: allOccupied = %v, oracle %v", w, dirs, got, want)
			}
		}
	}
}

// TestKernelZeroAllocSteadyState proves the hot path allocates nothing
// once its scratch buffers have grown: testing.AllocsPerRun must report
// exactly zero for every per-point operation on both Checker and
// MultiChecker.
func TestKernelZeroAllocSteadyState(t *testing.T) {
	profile := wideSpanProfile(t)
	r := rng.New(13, 5)
	net, err := deploy.Uniform(geom.UnitTorus, profile, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiChecker(net, []float64{0.15 * math.Pi, math.Pi / 4, math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	pts := equivPoints(net, r, 64)
	// Warm-up pass: grow every scratch buffer to its high-water mark.
	for _, p := range pts {
		checker.Report(p)
		multi.Evaluate(p)
		multi.FullViewCovered(p)
	}
	var sinkInt int
	var sinkBool bool
	cases := []struct {
		name string
		fn   func(geom.Vec)
	}{
		{"Checker.FullViewCovered", func(p geom.Vec) { sinkBool = checker.FullViewCovered(p) }},
		{"Checker.Report", func(p geom.Vec) { sinkInt += checker.Report(p).NumCovering }},
		{"Checker.MeetsNecessary", func(p geom.Vec) { sinkBool = checker.MeetsNecessary(p) }},
		{"Checker.MeetsSufficient", func(p geom.Vec) { sinkBool = checker.MeetsSufficient(p) }},
		{"Checker.CoverageCount", func(p geom.Vec) { sinkInt += checker.CoverageCount(p) }},
		{"Checker.UnsafeDirection", func(p geom.Vec) { _, sinkBool = checker.UnsafeDirection(p) }},
		{"MultiChecker.Evaluate", func(p geom.Vec) { sinkInt += multi.Evaluate(p).NumCovering }},
		{"MultiChecker.FullViewCovered", func(p geom.Vec) { sinkBool = multi.FullViewCovered(p)[0] }},
	}
	for _, tc := range cases {
		i := 0
		allocs := testing.AllocsPerRun(100, func() {
			tc.fn(pts[i%len(pts)])
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs/op in steady state, want 0", tc.name, allocs)
		}
	}
	_, _ = sinkInt, sinkBool
}
