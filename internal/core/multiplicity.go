package core

import "fullview/internal/geom"

// FullViewMultiplicity returns the full-view coverage depth of point p:
// the minimum, over all facing directions d⃗, of the number of covering
// cameras whose viewed direction lies within θ of d⃗, together with a
// facing direction attaining the minimum.
//
// Multiplicity generalises Definition 1 the way k-coverage generalises
// 1-coverage: a point is full-view covered iff its multiplicity is ≥ 1,
// and it remains full-view covered after any f camera failures iff its
// multiplicity is ≥ f+1. The intro's motivation for k-coverage — fault
// tolerance when "sensors often fail due to unexpected events" — carries
// over to full-view coverage through this quantity.
func (c *Checker) FullViewMultiplicity(p geom.Vec) (depth int, weakestDir float64) {
	return geom.MinArcCoverageDepth(c.viewedDirections(p), c.theta)
}

// SafeDirectionFraction returns the fraction of facing directions at p
// that are *safe* in the sense of Definition 1 (within θ of some
// covering camera's viewed direction). It is 1 exactly when p is
// full-view covered, and measures how close a partially covered point
// is to the guarantee.
func (c *Checker) SafeDirectionFraction(p geom.Vec) float64 {
	return geom.ArcUnionLength(c.viewedDirections(p), c.theta) / geom.TwoPi
}

// FaultTolerantFullView reports whether p stays full-view covered after
// the loss of any f cameras.
func (c *Checker) FaultTolerantFullView(p geom.Vec, f int) bool {
	if f < 0 {
		f = 0
	}
	depth, _ := c.FullViewMultiplicity(p)
	return depth >= f+1
}

// MultiplicityStats summarizes full-view multiplicity over sample
// points.
type MultiplicityStats struct {
	// Points is the number of sample points examined.
	Points int
	// Min is the lowest multiplicity seen (the region tolerates Min−1
	// arbitrary camera failures).
	Min int
	// Mean is the average multiplicity.
	Mean float64
	// Histogram counts points per multiplicity value, truncated at the
	// last non-zero bucket.
	Histogram []int
}

// SurveyMultiplicity computes multiplicity statistics over the sample
// points.
func (c *Checker) SurveyMultiplicity(points []geom.Vec) MultiplicityStats {
	stats := MultiplicityStats{Points: len(points)}
	total := 0
	for i, p := range points {
		depth, _ := c.FullViewMultiplicity(p)
		total += depth
		if i == 0 || depth < stats.Min {
			stats.Min = depth
		}
		for len(stats.Histogram) <= depth {
			stats.Histogram = append(stats.Histogram, 0)
		}
		stats.Histogram[depth]++
	}
	if len(points) > 0 {
		stats.Mean = float64(total) / float64(len(points))
	}
	return stats
}

// FaultTolerantFraction returns the fraction of surveyed points with
// multiplicity at least f+1.
func (s MultiplicityStats) FaultTolerantFraction(f int) float64 {
	if s.Points == 0 {
		return 0
	}
	if f < 0 {
		f = 0
	}
	count := 0
	for depth := f + 1; depth < len(s.Histogram); depth++ {
		count += s.Histogram[depth]
	}
	return float64(count) / float64(s.Points)
}
