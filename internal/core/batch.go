package core

import (
	"fullview/internal/geom"
)

// SurveyBatch diagnoses a whole point batch through the spatial index's
// cell-sorted batch gather and folds the reports into RegionStats. The
// per-point verdicts are bit-identical to a Report loop — the batch
// gather returns each point's viewed directions in exactly the order
// the point-at-a-time gather would, and the occupancy/gap evaluation
// below is the same code path over each point's CSR sub-slice — but the
// spatial work is amortised: each occupied grid cell's candidate
// neighbourhood is walked once per batch instead of once per point, and
// the per-θ 2θ threshold is hoisted out of the loop. Like Report,
// SurveyBatch reuses internal scratch and must not be called
// concurrently on one Checker.
func (c *Checker) SurveyBatch(points []geom.Vec) RegionStats {
	dirs, offs := c.index.AppendViewedDirectionsBatch(&c.batch, points)
	var stats RegionStats
	twoTheta := 2 * c.theta
	for i := range points {
		sub := dirs[offs[i]:offs[i+1]]
		// Occupancy first: it reads the raw directions, while the in-place
		// gap computation normalizes and sorts the sub-slice (sub-slices
		// are disjoint, so sorting one never disturbs another point's).
		necessary := c.necessary.allOccupied(sub)
		sufficient := c.sufficient.allOccupied(sub)
		gap, _ := geom.MaxCircularGapInPlace(sub)
		stats.observe(PointReport{
			NumCovering: len(sub),
			MaxGap:      gap,
			FullView:    len(sub) > 0 && gap <= twoTheta,
			Necessary:   necessary,
			Sufficient:  sufficient,
		})
	}
	return stats
}

// EvaluateBatch diagnoses a whole point batch for every configured θ,
// calling fn(i, report) once per point in batch order. Each report is
// bit-identical to Evaluate(points[i]); the batch gather amortises the
// spatial walk and the per-θ 2θ thresholds are hoisted out of the
// per-point loop. The report's PerTheta slice is reused across
// callbacks — fn must consume (or copy) it before returning.
func (m *MultiChecker) EvaluateBatch(points []geom.Vec, fn func(i int, rep MultiReport)) {
	dirs, offs := m.index.AppendViewedDirectionsBatch(&m.batch, points)
	for pi := range points {
		sub := dirs[offs[pi]:offs[pi+1]]
		for i := range m.occs {
			m.perTheta[i] = ThetaReport{
				Theta:      m.thetas[i],
				Necessary:  m.occs[i].necessary.allOccupied(sub),
				Sufficient: m.occs[i].sufficient.allOccupied(sub),
			}
		}
		gap, _ := geom.MaxCircularGapInPlace(sub)
		covered := len(sub) > 0
		for i := range m.perTheta {
			m.perTheta[i].FullView = covered && gap <= m.twoThetas[i]
		}
		fn(pi, MultiReport{
			NumCovering: len(sub),
			MaxGap:      gap,
			PerTheta:    m.perTheta,
		})
	}
}
