package core

import (
	"encoding/json"
	"testing"
)

// TestRegionStatsJSONRoundTrip pins the checkpoint contract: the
// serialized form carries the exact integer covering sum, so restored
// stats merge bit-identically with never-serialized ones.
func TestRegionStatsJSONRoundTrip(t *testing.T) {
	var a, b RegionStats
	a.observe(PointReport{NumCovering: 3, FullView: true, Necessary: true, Sufficient: false})
	a.observe(PointReport{NumCovering: 5, FullView: true, Necessary: true, Sufficient: true})
	a.observe(PointReport{NumCovering: 2})
	b.observe(PointReport{NumCovering: 7, FullView: true, Necessary: true, Sufficient: true})

	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var restored RegionStats
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatal(err)
	}
	if restored != a {
		t.Fatalf("round-trip: got %+v, want %+v", restored, a)
	}
	if got, want := restored.Merge(b), a.Merge(b); got != want {
		t.Fatalf("merge after round-trip: got %+v, want %+v", got, want)
	}
}
