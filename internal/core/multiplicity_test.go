package core

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func TestFullViewMultiplicityHandBuilt(t *testing.T) {
	p := geom.V(0.5, 0.5)
	theta := math.Pi / 4
	tests := []struct {
		name string
		dirs []float64
		want int
	}{
		{name: "no cameras", dirs: nil, want: 0},
		{name: "square exactly single-covers", dirs: []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}, want: 1},
		{
			name: "octagon double-covers",
			dirs: []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4, math.Pi, 5 * math.Pi / 4, 3 * math.Pi / 2, 7 * math.Pi / 4},
			want: 2,
		},
		{name: "clustered cameras leave zero", dirs: []float64{0.1, 0.2, 0.3}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cams := camerasAt(p, tt.dirs...)
			c := checkerFor(t, theta, cams)
			depth, weakest := c.FullViewMultiplicity(p)
			if depth != tt.want {
				t.Errorf("multiplicity = %d, want %d", depth, tt.want)
			}
			// The witness direction must see exactly `depth` cameras,
			// counted against the viewed directions the checker actually
			// used (the reconstructed ones, which carry float noise at
			// the deliberately boundary-exact geometries above).
			net, err := sensor.NewNetwork(geom.UnitTorus, cams)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, d := range net.ViewedDirections(p) {
				if geom.AngularDistance(weakest, d) <= theta {
					count++
				}
			}
			if count != depth {
				t.Errorf("weakest direction %v sees %d cameras, want %d", weakest, count, depth)
			}
		})
	}
}

func TestMultiplicityConsistentWithFullView(t *testing.T) {
	profile, err := sensor.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		net, err := deploy.Uniform(geom.UnitTorus, profile, 300, rng.New(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewChecker(net, math.Pi/3)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed, 5)
		for trial := 0; trial < 200; trial++ {
			p := geom.V(r.Float64(), r.Float64())
			depth, _ := c.FullViewMultiplicity(p)
			if (depth >= 1) != c.FullViewCovered(p) {
				t.Fatalf("seed %d: multiplicity %d disagrees with FullViewCovered at %v",
					seed, depth, p)
			}
			if depth > c.CoverageCount(p) {
				t.Fatalf("multiplicity %d exceeds covering count %d", depth, c.CoverageCount(p))
			}
		}
	}
}

func TestFaultTolerantFullViewRemovalProperty(t *testing.T) {
	// If multiplicity ≥ 2, removing any single camera keeps the point
	// full-view covered. θ sits strictly above π/4 so the octagon's
	// double coverage is robust to floating-point noise in the
	// reconstructed viewed directions.
	p := geom.V(0.5, 0.5)
	theta := math.Pi/4 + 0.01
	dirs := []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4, math.Pi, 5 * math.Pi / 4, 3 * math.Pi / 2, 7 * math.Pi / 4}
	c := checkerFor(t, theta, camerasAt(p, dirs...))
	if !c.FaultTolerantFullView(p, 1) {
		t.Fatal("octagon should tolerate one failure")
	}
	for drop := range dirs {
		remaining := make([]float64, 0, len(dirs)-1)
		for i, d := range dirs {
			if i != drop {
				remaining = append(remaining, d)
			}
		}
		cd := checkerFor(t, theta, camerasAt(p, remaining...))
		if !cd.FullViewCovered(p) {
			t.Fatalf("dropping camera %d broke coverage despite multiplicity ≥ 2", drop)
		}
	}
	// But it does not tolerate two failures (adjacent pair removal).
	if c.FaultTolerantFullView(p, 2) {
		cd := checkerFor(t, theta, camerasAt(p, dirs[2:]...))
		if !cd.FullViewCovered(p) {
			t.Error("claimed 2-fault tolerance but adjacent double-failure broke coverage")
		}
	}
}

func TestSafeDirectionFraction(t *testing.T) {
	p := geom.V(0.5, 0.5)
	theta := math.Pi / 4
	tests := []struct {
		name string
		dirs []float64
		want float64
	}{
		{name: "no cameras", dirs: nil, want: 0},
		{name: "single camera covers 2θ of directions", dirs: []float64{1}, want: 0.25},
		{name: "two opposite cameras", dirs: []float64{0, math.Pi}, want: 0.5},
		{name: "full square covers everything", dirs: []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}, want: 1},
		{name: "overlapping pair", dirs: []float64{0, math.Pi / 4}, want: 0.375},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := checkerFor(t, theta, camerasAt(p, tt.dirs...))
			got := c.SafeDirectionFraction(p)
			if math.Abs(got-tt.want) > 1e-6 {
				t.Errorf("SafeDirectionFraction = %v, want %v", got, tt.want)
			}
			// Fraction 1 ⇔ full-view covered (non-degenerate cases).
			if (got >= 1-1e-9) != c.FullViewCovered(p) {
				t.Errorf("fraction %v inconsistent with FullViewCovered=%v", got, c.FullViewCovered(p))
			}
		})
	}
}

func TestSafeDirectionFractionMonotoneInCameras(t *testing.T) {
	p := geom.V(0.5, 0.5)
	theta := math.Pi / 5
	dirs := []float64{0.3, 1.7, 2.9, 4.1, 5.3}
	prev := -1.0
	for k := 0; k <= len(dirs); k++ {
		c := checkerFor(t, theta, camerasAt(p, dirs[:k]...))
		frac := c.SafeDirectionFraction(p)
		if frac < prev-1e-12 {
			t.Fatalf("fraction decreased when adding camera %d: %v → %v", k, prev, frac)
		}
		prev = frac
	}
}

func TestFaultTolerantNegativeF(t *testing.T) {
	p := geom.V(0.5, 0.5)
	c := checkerFor(t, math.Pi/4, camerasAt(p, 0, math.Pi/2, math.Pi, 3*math.Pi/2))
	if c.FaultTolerantFullView(p, -3) != c.FullViewCovered(p) {
		t.Error("negative f should behave like f = 0")
	}
}

func TestSurveyMultiplicity(t *testing.T) {
	profile, err := sensor.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 2000, rng.New(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChecker(net, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, 12)
	if err != nil {
		t.Fatal(err)
	}
	stats := c.SurveyMultiplicity(points)
	if stats.Points != len(points) {
		t.Fatalf("Points = %d", stats.Points)
	}
	if stats.Min < 0 || stats.Mean < float64(stats.Min) {
		t.Errorf("inconsistent stats: %+v", stats)
	}
	// Histogram totals the points.
	total := 0
	for _, c := range stats.Histogram {
		total += c
	}
	if total != stats.Points {
		t.Errorf("histogram sums to %d, want %d", total, stats.Points)
	}
	// FaultTolerantFraction(0) is the full-view fraction.
	rs := c.SurveyRegion(points)
	if got, want := stats.FaultTolerantFraction(0), rs.FullViewFraction(); math.Abs(got-want) > 1e-12 {
		t.Errorf("FaultTolerantFraction(0) = %v, FullViewFraction = %v", got, want)
	}
	// Monotone in f.
	prev := 1.1
	for f := 0; f < 5; f++ {
		frac := stats.FaultTolerantFraction(f)
		if frac > prev {
			t.Errorf("fraction not monotone at f=%d", f)
		}
		prev = frac
	}
}

func TestSurveyMultiplicityEmpty(t *testing.T) {
	c := checkerFor(t, math.Pi/2, nil)
	stats := c.SurveyMultiplicity(nil)
	if stats.Points != 0 || stats.Mean != 0 || stats.FaultTolerantFraction(0) != 0 {
		t.Errorf("empty survey = %+v", stats)
	}
}
