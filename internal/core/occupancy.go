package core

import (
	"fullview/internal/geom"
)

// occupancy answers "does every sector of one anchored partition contain
// at least one of these directions?" — the inner predicate of both the
// necessary (w = 2θ) and sufficient (w = θ) conditions — in O(m) for m
// directions instead of the O(sectors·m) scan of checking each sector
// against every direction.
//
// The trick: the partition's full sectors tile the circle in order, the
// j-th starting at NormalizeAngle(j·w), so a direction d can only lie in
// full sectors whose index is within 1 of ⌊d/w⌋ (the ±1 slack absorbs
// every floating-point rounding in play: the normalization of d, the
// NormalizeAngle'd sector starts, and the 1/w reciprocal — all off by
// ulps, i.e. orders of magnitude less than one sector index for any
// partition small enough to materialise). Each direction therefore tests
// at most three candidate sectors with the exact Sector.Contains
// predicate, marking hits in a reusable bitmask; membership decisions are
// bit-identical to the brute-force scan because the predicate is the
// same, only the enumeration is pruned. The re-centred remainder sector,
// when present, does not sit on the j·w lattice and is tested by a
// separate O(m) pass.
//
// An occupancy reuses its bitmask across calls and is therefore not safe
// for concurrent use; clone one per goroutine.
type occupancy struct {
	sectors []geom.Sector
	w       float64  // lattice sector width
	invW    float64  // 1 / w, precomputed
	full    int      // sectors[:full] are the lattice sectors
	mask    []uint64 // reusable occupation bitmask over the full sectors
}

// interiorGuard is the absolute angular margin (radians) inside which a
// direction counts as strictly interior to its lattice sector without
// consulting Sector.Contains. Every floating-point discrepancy in play —
// the ±2π normalization of the direction, the NormalizeAngle'd sector
// starts, and the subtractions of the interiority test itself — is a few
// ulps of 2π (≈1e-15), so a 1e-9 margin proves both that the sector's
// exact Contains predicate accepts the direction and that no other
// lattice sector's can: their deltas sit at least w − guard away from
// the containment threshold. Directions within the guard of a boundary
// (or of the lattice's end, dn·invW ≥ full) take the exact probe path,
// so verdicts are identical to the brute-force scan for every input.
const interiorGuard = 1e-9

// newOccupancy builds the evaluator for the anchored partition of width w.
func newOccupancy(w float64) (occupancy, error) {
	sectors, err := geom.AnchoredPartition(w)
	if err != nil {
		return occupancy{}, err
	}
	full, _ := geom.SplitCircle(w)
	return occupancy{
		sectors: sectors,
		w:       w,
		invW:    1 / w,
		full:    full,
		mask:    make([]uint64, (full+63)/64),
	}, nil
}

// clone returns an evaluator sharing the immutable sectors but owning a
// private bitmask.
func (o *occupancy) clone() occupancy {
	c := *o
	c.mask = make([]uint64, len(o.mask))
	return c
}

// allOccupied reports whether every sector contains at least one of the
// directions. Directions may be raw atan2 outputs ((−π, π]) or already
// normalized; Sector.Contains accepts either, and the predicate is
// evaluated on the direction exactly as given so results match the
// brute-force scan bit for bit.
func (o *occupancy) allOccupied(dirs []float64) bool {
	// The remainder sector, if any, is off-lattice: plain scan.
	if o.full < len(o.sectors) {
		s := o.sectors[o.full]
		hit := false
		for _, d := range dirs {
			if s.Contains(d) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	mask := o.mask
	for i := range mask {
		mask[i] = 0
	}
	full, w, invW, sectors := o.full, o.w, o.invW, o.sectors
	count := 0
	for _, d := range dirs {
		dn := d
		if dn < 0 {
			dn += geom.TwoPi
		}
		j := int(dn * invW)
		if j < full {
			if lo := dn - sectors[j].Start; lo > interiorGuard && w-lo > interiorGuard {
				// Strictly interior to lattice sector j (see
				// interiorGuard): that sector certainly contains d and no
				// other lattice sector possibly can — mark and move on
				// without any Contains evaluation.
				wd, bit := j>>6, uint64(1)<<(uint(j)&63)
				if mask[wd]&bit == 0 {
					mask[wd] |= bit
					count++
					if count == full {
						return true
					}
				}
				continue
			}
		}
		for cand := j - 1; cand <= j+1; cand++ {
			// Reduce cand into [0, full) with compares instead of an
			// integer division: cand ∈ [−1, full+1] (j ∈ [0, full]), so
			// one add and at most two subtracts reproduce cand mod full
			// exactly. The divide was the hot instruction of this loop.
			cs := cand
			if cs < 0 {
				cs += full
			}
			for cs >= full {
				cs -= full
			}
			w, bit := cs>>6, uint64(1)<<(uint(cs)&63)
			if mask[w]&bit != 0 {
				continue
			}
			if sectors[cs].Contains(d) {
				mask[w] |= bit
				count++
				if count == full {
					return true
				}
			}
		}
	}
	return count == full
}
