package core

import (
	"context"

	"fullview/internal/geom"
	"fullview/internal/sweep"
)

// SurveyRegionContext evaluates the sample points through the shared
// internal/sweep engine with the given number of workers (GOMAXPROCS
// when workers ≤ 0) and aggregates exactly like SurveyRegion: results
// are bit-identical to the sequential sweep at any worker count. Each
// worker gets its own Clone of the Checker over the shared immutable
// spatial index and rides the cell-sorted batch kernel (SurveyBatch),
// so every production survey — server /survey, job bands, experiment
// grids — amortises the spatial gather across sweep.BatchSize points.
//
// A cancelled context aborts the sweep promptly and returns ctx.Err()
// with zero statistics.
func (c *Checker) SurveyRegionContext(ctx context.Context, points []geom.Vec, workers int) (RegionStats, error) {
	return sweep.RunBatch(ctx, points, workers,
		func() (*Checker, error) { return c.Clone(), nil },
		func(worker *Checker, acc RegionStats, _ int, pts []geom.Vec) RegionStats {
			return acc.Merge(worker.SurveyBatch(pts))
		},
		RegionStats.Merge,
	)
}

// SurveyRegionParallel is SurveyRegionContext without cancellation: it
// evaluates the sample points with the given number of workers
// (GOMAXPROCS when workers ≤ 0) and returns statistics identical to
// SurveyRegion.
func (c *Checker) SurveyRegionParallel(points []geom.Vec, workers int) RegionStats {
	stats, err := c.SurveyRegionContext(context.Background(), points, workers)
	if err != nil {
		// Unreachable: the background context never cancels and the
		// worker factory never fails.
		panic(err)
	}
	return stats
}
