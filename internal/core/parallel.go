package core

import (
	"runtime"
	"sync"

	"fullview/internal/geom"
)

// SurveyRegionParallel evaluates the sample points with the given number
// of workers (GOMAXPROCS when workers ≤ 0) and aggregates exactly like
// SurveyRegion. Each worker gets its own Checker over the shared
// immutable spatial index, so the sweep scales with cores while the
// result stays identical to the sequential sweep.
func (c *Checker) SurveyRegionParallel(points []geom.Vec, workers int) RegionStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		return c.SurveyRegion(points)
	}

	partials := make([]RegionStats, workers)
	totals := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(points) {
			hi = len(points)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Workers share the index but not the scratch buffers.
			worker, err := NewCheckerFromIndex(c.index, c.theta)
			if err != nil {
				// Unreachable: c.theta was already validated.
				panic(err)
			}
			stats := RegionStats{Points: hi - lo}
			covering := 0
			for i, p := range points[lo:hi] {
				rep := worker.Report(p)
				covering += rep.NumCovering
				if i == 0 || rep.NumCovering < stats.MinCovering {
					stats.MinCovering = rep.NumCovering
				}
				if rep.FullView {
					stats.FullView++
				}
				if rep.Necessary {
					stats.Necessary++
				}
				if rep.Sufficient {
					stats.Sufficient++
				}
			}
			partials[w] = stats
			totals[w] = covering
		}(w, lo, hi)
	}
	wg.Wait()

	merged := RegionStats{}
	totalCovering := 0
	first := true
	for w, part := range partials {
		if part.Points == 0 {
			continue
		}
		merged.Points += part.Points
		merged.FullView += part.FullView
		merged.Necessary += part.Necessary
		merged.Sufficient += part.Sufficient
		totalCovering += totals[w]
		if first || part.MinCovering < merged.MinCovering {
			merged.MinCovering = part.MinCovering
			first = false
		}
	}
	if merged.Points > 0 {
		merged.MeanCovering = float64(totalCovering) / float64(merged.Points)
	}
	return merged
}
