package core

import (
	"fmt"
	"math"

	"fullview/internal/geom"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// ThetaReport is the verdict of one effective angle inside a
// MultiReport.
type ThetaReport struct {
	// Theta is the effective angle this verdict belongs to.
	Theta float64
	// FullView reports full-view coverage (Definition 1) at this θ.
	FullView bool
	// Necessary reports the geometric necessary condition (2θ-sectors).
	Necessary bool
	// Sufficient reports the geometric sufficient condition (θ-sectors).
	Sufficient bool
}

// MultiReport is the per-point diagnosis of a MultiChecker: the
// θ-independent quantities once, plus one verdict per effective angle.
type MultiReport struct {
	// NumCovering is the number of cameras covering the point.
	NumCovering int
	// MaxGap is the widest circular gap between viewed directions (2π
	// when fewer than two cameras cover the point).
	MaxGap float64
	// PerTheta holds one verdict per configured θ, in Thetas() order.
	// The slice is reused by the next Evaluate call on the same
	// MultiChecker; copy it if it must outlive the call.
	PerTheta []ThetaReport
}

// MultiChecker evaluates the full per-point diagnosis for a whole list
// of effective angles from a single candidate gather. The expensive,
// θ-independent work — spatial query, cover tests, viewed-direction
// gather, sort, max-gap scan — happens once per point; each θ adds only
// a gap comparison and two O(m) sector-occupancy passes. This is the
// kernel for θ-sweep experiments, where a Checker per θ would re-gather
// the same directions |θ-list| times.
//
// Like Checker, a MultiChecker reuses internal buffers and must not be
// shared between goroutines; Clone derives an independent evaluator
// sharing the immutable spatial index.
type MultiChecker struct {
	index       spatial.Source
	thetas      []float64
	twoThetas   []float64 // 2·thetas[i], hoisted for the batch path
	occs        []thetaOccupancy
	dirBuf      []float64
	perTheta    []ThetaReport
	fullViewBuf []bool
	batch       spatial.BatchScratch // EvaluateBatch gather scratch
}

// thetaOccupancy pairs the two partition evaluators of one θ.
type thetaOccupancy struct {
	necessary  occupancy // width 2θ
	sufficient occupancy // width θ
}

// NewMultiChecker builds a MultiChecker for the network with effective
// angles thetas, each in (0, π]. The list must be non-empty.
func NewMultiChecker(net *sensor.Network, thetas []float64) (*MultiChecker, error) {
	return NewMultiCheckerFromIndex(spatial.NewIndex(net), thetas)
}

// NewMultiCheckerFromIndex builds a MultiChecker sharing an existing
// immutable spatial index, amortising index construction the same way
// NewCheckerFromIndex does.
func NewMultiCheckerFromIndex(ix *spatial.Index, thetas []float64) (*MultiChecker, error) {
	return NewMultiCheckerFromSource(ix, thetas)
}

// NewMultiCheckerFromSource builds a MultiChecker over any
// spatial.Source — an immutable Index, a MutableIndex absorbing churn,
// or a pinned View (see NewCheckerFromSource for version semantics).
func NewMultiCheckerFromSource(ix spatial.Source, thetas []float64) (*MultiChecker, error) {
	if len(thetas) == 0 {
		return nil, fmt.Errorf("core: MultiChecker needs at least one effective angle")
	}
	m := &MultiChecker{
		index:    ix,
		thetas:   append([]float64(nil), thetas...),
		occs:     make([]thetaOccupancy, 0, len(thetas)),
		dirBuf:   make([]float64, 0, 64),
		perTheta: make([]ThetaReport, len(thetas)),
	}
	for _, theta := range thetas {
		if !(theta > 0) || theta > math.Pi {
			return nil, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
		}
		necessary, err := newOccupancy(2 * theta)
		if err != nil {
			return nil, fmt.Errorf("core: necessary partition (θ=%v): %w", theta, err)
		}
		sufficient, err := newOccupancy(theta)
		if err != nil {
			return nil, fmt.Errorf("core: sufficient partition (θ=%v): %w", theta, err)
		}
		m.occs = append(m.occs, thetaOccupancy{necessary: necessary, sufficient: sufficient})
		// Doubling is exact in floating point, so the hoisted threshold
		// compares bit-identically to Evaluate's inline 2*θ.
		m.twoThetas = append(m.twoThetas, 2*theta)
	}
	return m, nil
}

// Clone returns an independent MultiChecker over the same network and
// θ-list: the immutable spatial index and sector partitions are shared,
// every mutable buffer is private. Use it to give each goroutine of a
// parallel sweep its own evaluator.
func (m *MultiChecker) Clone() *MultiChecker {
	clone := *m
	clone.occs = make([]thetaOccupancy, len(m.occs))
	for i, o := range m.occs {
		clone.occs[i] = thetaOccupancy{
			necessary:  o.necessary.clone(),
			sufficient: o.sufficient.clone(),
		}
	}
	clone.dirBuf = make([]float64, 0, cap(m.dirBuf))
	clone.perTheta = make([]ThetaReport, len(m.perTheta))
	clone.batch = spatial.BatchScratch{}
	return &clone
}

// Thetas returns the configured effective angles, in Evaluate order.
// The caller must not modify the returned slice.
func (m *MultiChecker) Thetas() []float64 { return m.thetas }

// Index returns the underlying spatial source.
func (m *MultiChecker) Index() spatial.Source { return m.index }

// Evaluate diagnoses point p for every configured θ. Each verdict is
// bit-identical to what a Checker with that θ would report for p; the
// candidate gather, max-gap scan, and buffer reuse make the call
// allocation-free in the steady state. The returned report's PerTheta
// slice is reused by the next call.
func (m *MultiChecker) Evaluate(p geom.Vec) MultiReport {
	dirs := m.index.AppendViewedDirections(m.dirBuf[:0], p)
	m.dirBuf = dirs
	// Occupancies read the raw directions; the in-place gap computation
	// afterwards normalizes and sorts the buffer.
	for i := range m.occs {
		m.perTheta[i] = ThetaReport{
			Theta:      m.thetas[i],
			Necessary:  m.occs[i].necessary.allOccupied(dirs),
			Sufficient: m.occs[i].sufficient.allOccupied(dirs),
		}
	}
	gap, _ := geom.MaxCircularGapInPlace(dirs)
	for i := range m.perTheta {
		m.perTheta[i].FullView = len(dirs) > 0 && gap <= 2*m.thetas[i]
	}
	return MultiReport{
		NumCovering: len(dirs),
		MaxGap:      gap,
		PerTheta:    m.perTheta,
	}
}

// FullViewCovered reports full-view coverage of p for every configured
// θ at once, skipping the sector-occupancy work Evaluate performs. The
// returned slice is reused by the next call on this MultiChecker
// (element i corresponds to Thetas()[i]).
func (m *MultiChecker) FullViewCovered(p geom.Vec) []bool {
	dirs := m.index.AppendViewedDirections(m.dirBuf[:0], p)
	m.dirBuf = dirs
	gap, _ := geom.MaxCircularGapInPlace(dirs)
	if cap(m.fullViewBuf) < len(m.thetas) {
		m.fullViewBuf = make([]bool, len(m.thetas))
	}
	buf := m.fullViewBuf[:len(m.thetas)]
	for i, theta := range m.thetas {
		buf[i] = len(dirs) > 0 && gap <= 2*theta
	}
	return buf
}
