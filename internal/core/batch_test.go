package core

// Equivalence tests for the batch kernel entry points: SurveyBatch and
// EvaluateBatch must reproduce the point-at-a-time Report / Evaluate
// verdicts exactly — compared with ==, never a tolerance — over
// randomized heterogeneous networks, over mutated MutableIndex sources
// with a live overlay, and at every batch-boundary shape the sweep
// engine produces. Plus testing.AllocsPerRun pins for the batch calls.

import (
	"math"
	"testing"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// TestSurveyBatchMatchesReportLoop pins SurveyBatch to the Report loop
// it replaces: identical RegionStats (including the carried covering
// sum via MeanCovering) for uneven batch sizes, on wide-span networks.
func TestSurveyBatchMatchesReportLoop(t *testing.T) {
	profile := wideSpanProfile(t)
	for seed := uint64(1); seed <= 3; seed++ {
		r := rng.New(seed, 21)
		net, err := deploy.Uniform(geom.UnitTorus, profile, 350, r)
		if err != nil {
			t.Fatal(err)
		}
		checker, err := NewChecker(net, math.Pi/4)
		if err != nil {
			t.Fatal(err)
		}
		pts := equivPoints(net, r, 200)
		// Sizes straddle sweep batch boundaries: empty, one, a prime,
		// and the full set.
		for _, size := range []int{0, 1, 37, len(pts)} {
			batch := pts[:size]
			var want RegionStats
			for _, p := range batch {
				want.observe(checker.Report(p))
			}
			if got := checker.SurveyBatch(batch); got != want {
				t.Fatalf("seed %d size %d: SurveyBatch = %+v, want %+v", seed, size, got, want)
			}
		}
	}
}

// TestEvaluateBatchMatchesEvaluate pins every per-point multi-θ report
// from EvaluateBatch to its Evaluate twin, field for field.
func TestEvaluateBatchMatchesEvaluate(t *testing.T) {
	profile := wideSpanProfile(t)
	thetas := []float64{math.Pi / 6, 0.15 * math.Pi, math.Pi / 4, math.Pi / 2}
	r := rng.New(8, 2)
	net, err := deploy.Uniform(geom.UnitTorus, profile, 300, r)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewMultiChecker(net, thetas)
	if err != nil {
		t.Fatal(err)
	}
	point, err := NewMultiChecker(net, thetas)
	if err != nil {
		t.Fatal(err)
	}
	pts := equivPoints(net, r, 160)
	seen := 0
	batch.EvaluateBatch(pts, func(i int, rep MultiReport) {
		if i != seen {
			t.Fatalf("callback order: got index %d, want %d", i, seen)
		}
		seen++
		want := point.Evaluate(pts[i])
		if rep.NumCovering != want.NumCovering || rep.MaxGap != want.MaxGap {
			t.Fatalf("point %d: shared fields (%d, %v), want (%d, %v)",
				i, rep.NumCovering, rep.MaxGap, want.NumCovering, want.MaxGap)
		}
		for k := range want.PerTheta {
			if rep.PerTheta[k] != want.PerTheta[k] {
				t.Fatalf("point %d θ[%d]: batch %+v, want %+v",
					i, k, rep.PerTheta[k], want.PerTheta[k])
			}
		}
	})
	if seen != len(pts) {
		t.Fatalf("EvaluateBatch visited %d points, want %d", seen, len(pts))
	}
}

// TestSurveyBatchMutatedSource runs the batch kernel over a
// MutableIndex whose overlay is live (removals and additions not folded
// into the CSR base) and over a pinned snapshot, comparing against the
// point path on the same source.
func TestSurveyBatchMutatedSource(t *testing.T) {
	profile := wideSpanProfile(t)
	r := rng.New(31, 4)
	net, err := deploy.Uniform(geom.UnitTorus, profile, 250, r)
	if err != nil {
		t.Fatal(err)
	}
	m := spatial.NewMutableIndex(net, spatial.MutableOptions{RebuildFraction: -1})
	if _, err := m.Remove([]int{2, 17, 40}); err != nil {
		t.Fatal(err)
	}
	adds := make([]sensor.Camera, 5)
	for i := range adds {
		adds[i] = sensor.Camera{
			Pos:      geom.V(r.Float64(), r.Float64()),
			Orient:   r.Float64() * 2 * math.Pi,
			Radius:   0.05 + 0.1*r.Float64(),
			Aperture: math.Pi / 3,
		}
	}
	if _, err := m.Add(adds); err != nil {
		t.Fatal(err)
	}
	for _, src := range []spatial.Source{m, m.Snapshot()} {
		batchChecker, err := NewCheckerFromSource(src, math.Pi/4)
		if err != nil {
			t.Fatal(err)
		}
		pointChecker, err := NewCheckerFromSource(src, math.Pi/4)
		if err != nil {
			t.Fatal(err)
		}
		pts := equivPoints(net, r, 180)
		var want RegionStats
		for _, p := range pts {
			want.observe(pointChecker.Report(p))
		}
		if got := batchChecker.SurveyBatch(pts); got != want {
			t.Fatalf("mutated source: SurveyBatch = %+v, want %+v", got, want)
		}

		multiBatch, err := NewMultiCheckerFromSource(src, []float64{math.Pi / 4, math.Pi / 3})
		if err != nil {
			t.Fatal(err)
		}
		multiPoint, err := NewMultiCheckerFromSource(src, []float64{math.Pi / 4, math.Pi / 3})
		if err != nil {
			t.Fatal(err)
		}
		multiBatch.EvaluateBatch(pts, func(i int, rep MultiReport) {
			want := multiPoint.Evaluate(pts[i])
			if rep.NumCovering != want.NumCovering || rep.MaxGap != want.MaxGap {
				t.Fatalf("mutated point %d: (%d, %v), want (%d, %v)",
					i, rep.NumCovering, rep.MaxGap, want.NumCovering, want.MaxGap)
			}
			for k := range want.PerTheta {
				if rep.PerTheta[k] != want.PerTheta[k] {
					t.Fatalf("mutated point %d θ[%d]: %+v, want %+v",
						i, k, rep.PerTheta[k], want.PerTheta[k])
				}
			}
		})
	}
}

// TestBatchKernelZeroAllocSteadyState proves the batch entry points
// allocate nothing once their scratch has grown.
func TestBatchKernelZeroAllocSteadyState(t *testing.T) {
	profile := wideSpanProfile(t)
	r := rng.New(12, 6)
	net, err := deploy.Uniform(geom.UnitTorus, profile, 400, r)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewMultiChecker(net, []float64{0.15 * math.Pi, math.Pi / 4, math.Pi / 2})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]geom.Vec{equivPoints(net, r, 128), equivPoints(net, r, 128)}
	var sink int
	for _, pts := range batches { // warm-up
		sink += checker.SurveyBatch(pts).Points
		multi.EvaluateBatch(pts, func(_ int, rep MultiReport) { sink += rep.NumCovering })
	}
	i := 0
	if allocs := testing.AllocsPerRun(50, func() {
		sink += checker.SurveyBatch(batches[i%2]).FullView
		i++
	}); allocs != 0 {
		t.Errorf("SurveyBatch: %.1f allocs per batch in steady state, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		multi.EvaluateBatch(batches[i%2], func(_ int, rep MultiReport) { sink += rep.NumCovering })
		i++
	}); allocs != 0 {
		t.Errorf("EvaluateBatch: %.1f allocs per batch in steady state, want 0", allocs)
	}
	_ = sink
}
