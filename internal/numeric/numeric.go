// Package numeric provides the repository's numeric-health guards: the
// structured NonFiniteError and check helpers that convert NaN/±Inf
// values — produced by the closed-form theorems at extreme (n, θ) or by
// degenerate experiment aggregates — into ordinary errors naming the
// offending quantity and its inputs, instead of silently poisoning
// downstream tables.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonFinite is the sentinel every NonFiniteError wraps; test with
// errors.Is(err, numeric.ErrNonFinite).
var ErrNonFinite = errors.New("non-finite value")

// NonFiniteError reports a NaN or ±Inf in a named quantity.
type NonFiniteError struct {
	// Quantity names what was computed (e.g. "CSANecessary").
	Quantity string
	// Value is the offending value (NaN, +Inf, or -Inf).
	Value float64
	// Inputs is a human-readable rendering of the inputs that produced
	// the value (e.g. "n=2 θ=3.14159").
	Inputs string
}

// Error implements error.
func (e *NonFiniteError) Error() string {
	if e.Inputs == "" {
		return fmt.Sprintf("%s is non-finite: %v", e.Quantity, e.Value)
	}
	return fmt.Sprintf("%s is non-finite: %v (inputs: %s)", e.Quantity, e.Value, e.Inputs)
}

// Unwrap lets errors.Is match ErrNonFinite.
func (e *NonFiniteError) Unwrap() error { return ErrNonFinite }

// Check returns a *NonFiniteError when v is NaN or ±Inf, nil otherwise.
// The inputs are formatted as "k₁=v₁ k₂=v₂ …" from alternating
// key-value arguments.
func Check(quantity string, v float64, inputs ...any) error {
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		return nil
	}
	return &NonFiniteError{Quantity: quantity, Value: v, Inputs: formatInputs(inputs)}
}

// Checked passes (v, err) through unchanged when err is non-nil or v is
// finite, and converts a non-finite v into a *NonFiniteError. It wraps
// a computation in one line:
//
//	return numeric.Checked("CSANecessary", value, nil, "n", n, "θ", theta)
func Checked(quantity string, v float64, err error, inputs ...any) (float64, error) {
	if err != nil {
		return v, err
	}
	if cerr := Check(quantity, v, inputs...); cerr != nil {
		return v, cerr
	}
	return v, nil
}

// CheckAll checks a set of named quantities at once and reports the
// first non-finite one in argument order: alternating name, value
// pairs.
func CheckAll(context string, pairs ...any) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		name, _ := pairs[i].(string)
		v, ok := pairs[i+1].(float64)
		if !ok {
			continue
		}
		if err := Check(name, v); err != nil {
			var nf *NonFiniteError
			errors.As(err, &nf)
			nf.Inputs = context
			return nf
		}
	}
	return nil
}

func formatInputs(inputs []any) string {
	out := ""
	for i := 0; i+1 < len(inputs); i += 2 {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%v=%v", inputs[i], inputs[i+1])
	}
	return out
}
