package numeric

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestCheckFiniteValues(t *testing.T) {
	for _, v := range []float64{0, 1, -1, math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64} {
		if err := Check("q", v); err != nil {
			t.Errorf("Check(%v) = %v", v, err)
		}
	}
}

func TestCheckNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := Check("CSANecessary", v, "n", 2, "θ", 3.14)
		if err == nil {
			t.Fatalf("Check(%v) = nil", v)
		}
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("errors.Is(_, ErrNonFinite) = false for %v", err)
		}
		var nf *NonFiniteError
		if !errors.As(err, &nf) {
			t.Fatalf("not a *NonFiniteError: %v", err)
		}
		if nf.Quantity != "CSANecessary" {
			t.Errorf("Quantity = %q", nf.Quantity)
		}
		msg := err.Error()
		for _, want := range []string{"CSANecessary", "n=2", "θ=3.14"} {
			if !strings.Contains(msg, want) {
				t.Errorf("message %q missing %q", msg, want)
			}
		}
	}
}

func TestChecked(t *testing.T) {
	if v, err := Checked("q", 1.5, nil); err != nil || v != 1.5 {
		t.Errorf("Checked finite = %v, %v", v, err)
	}
	sentinel := errors.New("upstream")
	if _, err := Checked("q", math.NaN(), sentinel); !errors.Is(err, sentinel) {
		t.Errorf("Checked must pass upstream error through, got %v", err)
	}
	if _, err := Checked("q", math.Inf(1), nil); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Checked(+Inf) = %v", err)
	}
}

func TestCheckAll(t *testing.T) {
	if err := CheckAll("ctx", "a", 1.0, "b", 2.0); err != nil {
		t.Errorf("all finite: %v", err)
	}
	err := CheckAll("grid experiment", "a", 1.0, "b", math.NaN(), "c", math.Inf(1))
	var nf *NonFiniteError
	if !errors.As(err, &nf) {
		t.Fatalf("CheckAll = %v", err)
	}
	if nf.Quantity != "b" {
		t.Errorf("first offender = %q, want b", nf.Quantity)
	}
	if nf.Inputs != "grid experiment" {
		t.Errorf("Inputs = %q", nf.Inputs)
	}
}
