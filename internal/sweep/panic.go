package sweep

import (
	"fmt"
	"runtime/debug"
)

// panicStackLimit caps the stack capture attached to a PanicError. Full
// stacks of deep kernels can run to tens of kilobytes; the first few KB
// always contain the panicking frame.
const panicStackLimit = 8 << 10

// PanicError is a panic raised by a sweep kernel (or state factory),
// recovered inside the engine and converted into an ordinary error. The
// engine guarantees that a panicking kernel never crashes the process:
// the panic is captured here, peer workers are cancelled, and every
// entry point (Run, Map, and all experiment runners above them) returns
// the *PanicError through its normal error path.
type PanicError struct {
	// Item is the index of the work item (point or trial) whose kernel
	// panicked; -1 when the panic happened outside item processing
	// (e.g. in a worker-state factory).
	Item int
	// Worker is the id of the worker goroutine that recovered the panic
	// (0 for the sequential single-worker path).
	Worker int
	// Value is the value passed to panic().
	Value any
	// Stack is the goroutine stack captured at recovery, truncated to a
	// few kilobytes around the panicking frame.
	Stack []byte
}

// Error implements error. The captured stack is included so that a
// panic surfaced through layers of experiment plumbing still points at
// the offending frame.
func (e *PanicError) Error() string {
	where := fmt.Sprintf("item %d", e.Item)
	if e.Item < 0 {
		where = "worker state setup"
	}
	return fmt.Sprintf("sweep: panic in worker %d (%s): %v\n%s", e.Worker, where, e.Value, e.Stack)
}

// Unwrap exposes panic(err) values to errors.Is / errors.As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// newPanicError captures the current goroutine's stack for a recovered
// panic value.
func newPanicError(worker, item int, value any) *PanicError {
	stack := debug.Stack()
	if len(stack) > panicStackLimit {
		stack = stack[:panicStackLimit]
	}
	return &PanicError{Item: item, Worker: worker, Value: value, Stack: stack}
}

// guard runs f and converts a panic into a *PanicError. The item index
// is read through a pointer so loop bodies can reuse one guard while
// the current index advances.
func guard(worker int, item *int, f func()) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = newPanicError(worker, *item, v)
		}
	}()
	f()
	return nil
}
