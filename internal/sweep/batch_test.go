package sweep

// Tests for the batch execution path: RunBatch must partition every
// point into contiguous BatchSize sub-slices with correct global
// offsets, reproduce Run's results at any worker count, honour
// cancellation between sub-slices, and contain kernel panics with the
// batch's first index as the PanicError item.

import (
	"context"
	"errors"
	"testing"

	"fullview/internal/geom"
)

// TestRunBatchCoversEveryPointOnce checks partitioning: each point is
// visited exactly once, in order, with lo equal to the global index of
// the sub-slice's first point and every sub-slice at most BatchSize
// long.
func TestRunBatchCoversEveryPointOnce(t *testing.T) {
	for _, n := range []int{1, BatchSize - 1, BatchSize, BatchSize + 1, 3*BatchSize + 17, 1003} {
		points := testPoints(n)
		for _, workers := range []int{1, 2, 3, 7} {
			kernel := func(_ struct{}, acc []int, lo int, pts []geom.Vec) []int {
				if len(pts) == 0 || len(pts) > BatchSize {
					t.Errorf("n=%d workers=%d: sub-slice of %d points", n, workers, len(pts))
				}
				for i, p := range pts {
					if p != points[lo+i] {
						t.Errorf("n=%d workers=%d: pts[%d] is not points[%d]", n, workers, i, lo+i)
					}
					acc = append(acc, lo+i)
				}
				return acc
			}
			merge := func(dst, src []int) []int { return append(dst, src...) }
			got, err := RunBatch(context.Background(), points, workers, noState, kernel, merge)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			if len(got) != n {
				t.Fatalf("n=%d workers=%d: visited %d points, want %d", n, workers, len(got), n)
			}
			for i, v := range got {
				if v != i {
					t.Fatalf("n=%d workers=%d: index %d visited at position %d", n, workers, v, i)
				}
			}
		}
	}
}

// TestRunBatchMatchesRun pins RunBatch to Run on the same fold: a
// batch kernel that loops its sub-slice must give the same result as
// the per-point kernel at every worker count.
func TestRunBatchMatchesRun(t *testing.T) {
	points := testPoints(4*BatchSize + 39)
	pointKernel := func(_ struct{}, acc float64, i int, p geom.Vec) float64 {
		return acc + p.X*float64(i+1)
	}
	batchKernel := func(_ struct{}, acc float64, lo int, pts []geom.Vec) float64 {
		for i, p := range pts {
			acc = pointKernel(struct{}{}, acc, lo+i, p)
		}
		return acc
	}
	merge := func(dst, src float64) float64 { return dst + src }
	want, err := Run(context.Background(), points, 1, noState, pointKernel, merge)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		got, err := RunBatch(context.Background(), points, workers, noState, batchKernel, merge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: RunBatch = %v, Run = %v", workers, got, want)
		}
	}
}

// TestRunBatchEmptyAndPreCancelled pins the trivial paths.
func TestRunBatchEmptyAndPreCancelled(t *testing.T) {
	kernel := func(_ struct{}, acc int, _ int, pts []geom.Vec) int { return acc + len(pts) }
	merge := func(dst, src int) int { return dst + src }
	got, err := RunBatch(context.Background(), nil, 4, noState, kernel, merge)
	if err != nil || got != 0 {
		t.Fatalf("empty: got (%d, %v), want (0, nil)", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatch(ctx, testPoints(10), 2, noState, kernel, merge); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
}

// TestRunBatchCancellationBetweenBatches checks that a cancellation
// fired from inside a kernel stops the sweep at a batch boundary.
func TestRunBatchCancellationBetweenBatches(t *testing.T) {
	points := testPoints(10 * BatchSize)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	kernel := func(_ struct{}, acc int, _ int, pts []geom.Vec) int {
		calls++
		if calls == 2 {
			cancel()
		}
		return acc + len(pts)
	}
	merge := func(dst, src int) int { return dst + src }
	_, err := RunBatch(ctx, points, 1, noState, kernel, merge)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls >= 10 {
		t.Fatalf("kernel ran %d batches after cancellation, want an early stop", calls)
	}
}

// TestRunBatchStateFactoryError propagates factory failures like Run.
func TestRunBatchStateFactoryError(t *testing.T) {
	boom := errors.New("no state for you")
	factory := func() (struct{}, error) { return struct{}{}, boom }
	kernel := func(_ struct{}, acc int, _ int, pts []geom.Vec) int { return acc + len(pts) }
	merge := func(dst, src int) int { return dst + src }
	if _, err := RunBatch(context.Background(), testPoints(50), 2, factory, kernel, merge); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the factory error", err)
	}
}

// TestRunBatchPanicIsolated checks panic containment: the PanicError
// reports the batch's first global index, and peer workers are not torn
// down mid-write.
func TestRunBatchPanicIsolated(t *testing.T) {
	points := testPoints(3*BatchSize + 5)
	kernel := func(_ struct{}, acc int, lo int, pts []geom.Vec) int {
		if lo == BatchSize { // second batch of the single chunk
			panic("kernel exploded")
		}
		return acc + len(pts)
	}
	merge := func(dst, src int) int { return dst + src }
	_, err := RunBatch(context.Background(), points, 1, noState, kernel, merge)
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	if perr.Item != BatchSize {
		t.Fatalf("PanicError.Item = %d, want the batch start %d", perr.Item, BatchSize)
	}
}
