package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"fullview/internal/geom"
)

// panicWorkerCounts are the worker counts every isolation test runs at.
func panicWorkerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

func TestRunKernelPanicIsolated(t *testing.T) {
	const bad = 137
	for _, workers := range panicWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Run(context.Background(), testPoints(1000), workers,
				func() (struct{}, error) { return struct{}{}, nil },
				func(_ struct{}, acc int, i int, _ geom.Vec) int {
					if i == bad {
						panic("kernel exploded")
					}
					return acc + 1
				},
				func(dst, src int) int { return dst + src },
			)
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PanicError, got %v", err)
			}
			if pe.Item != bad {
				t.Errorf("Item = %d, want %d", pe.Item, bad)
			}
			if pe.Value != "kernel exploded" {
				t.Errorf("Value = %v", pe.Value)
			}
			if !bytes.Contains(pe.Stack, []byte("panic")) {
				t.Errorf("stack capture missing panic frame:\n%s", pe.Stack)
			}
			if workers > 1 && (pe.Worker < 0 || pe.Worker >= workers) {
				t.Errorf("Worker = %d out of range [0,%d)", pe.Worker, workers)
			}
		})
	}
}

func TestRunStateFactoryPanicIsolated(t *testing.T) {
	for _, workers := range panicWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Run(context.Background(), testPoints(64), workers,
				func() (struct{}, error) { panic("factory exploded") },
				func(_ struct{}, acc int, _ int, _ geom.Vec) int { return acc },
				func(dst, src int) int { return dst + src },
			)
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PanicError, got %v", err)
			}
			if pe.Item != -1 {
				t.Errorf("Item = %d, want -1 for state setup", pe.Item)
			}
		})
	}
}

func TestMapPanicIsolated(t *testing.T) {
	const bad = 41
	for _, workers := range panicWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
				if i == bad {
					panic(fmt.Errorf("trial %d exploded", i))
				}
				return i, nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PanicError, got %v", err)
			}
			if pe.Item != bad {
				t.Errorf("Item = %d, want %d", pe.Item, bad)
			}
			if len(pe.Stack) == 0 {
				t.Error("empty stack capture")
			}
		})
	}
}

// TestMapPanicUnwrap checks that panic(err) values stay reachable for
// errors.Is through the PanicError wrapper.
func TestMapPanicUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel failure")
	_, err := Map(context.Background(), 10, 2, func(i int) (int, error) {
		if i == 3 {
			panic(sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false; err = %v", err)
	}
}

// TestRunPanicNotMaskedByPeerCancellation pins the error-selection rule:
// a panic in a high-index worker must win over the context.Canceled its
// cancellation induces in lower-index peers.
func TestRunPanicNotMaskedByPeerCancellation(t *testing.T) {
	workers := 4
	points := testPoints(workers * cancelCheckInterval * 4)
	last := len(points) - 1 // owned by the highest worker
	for trial := 0; trial < 10; trial++ {
		_, err := Run(context.Background(), points, workers,
			func() (struct{}, error) { return struct{}{}, nil },
			func(_ struct{}, acc int, i int, _ geom.Vec) int {
				if i == last {
					panic("late worker panic")
				}
				return acc + 1
			},
			func(dst, src int) int { return dst + src },
		)
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("trial %d: want *PanicError, got %v", trial, err)
		}
	}
}

func TestPanicErrorMessage(t *testing.T) {
	pe := &PanicError{Item: 7, Worker: 2, Value: "boom", Stack: []byte("goroutine 1 [running]:")}
	msg := pe.Error()
	for _, want := range []string{"worker 2", "item 7", "boom", "goroutine"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
	setup := &PanicError{Item: -1, Worker: 0, Value: "boom"}
	if !bytes.Contains([]byte(setup.Error()), []byte("state setup")) {
		t.Errorf("Error() = %q missing state-setup marker", setup.Error())
	}
}
