package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"fullview/internal/geom"
)

// testPoints returns n distinct points.
func testPoints(n int) []geom.Vec {
	pts := make([]geom.Vec, n)
	for i := range pts {
		pts[i] = geom.V(float64(i), float64(2*i))
	}
	return pts
}

// noState is the factory for kernels that need no worker state.
func noState() (struct{}, error) { return struct{}{}, nil }

func TestRunMatchesSequentialAcrossWorkers(t *testing.T) {
	points := testPoints(1003)
	kernel := func(_ struct{}, acc float64, i int, p geom.Vec) float64 {
		return acc + p.X*float64(i+1)
	}
	merge := func(dst, src float64) float64 { return dst + src }

	want, err := Run(context.Background(), points, 1, noState, kernel, merge)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 16, runtime.GOMAXPROCS(0)} {
		got, err := Run(context.Background(), points, workers, noState, kernel, merge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: got %v, want %v", workers, got, want)
		}
	}
}

func TestRunMergesInChunkOrder(t *testing.T) {
	const n = 537
	points := testPoints(n)
	kernel := func(_ struct{}, acc []int, i int, _ geom.Vec) []int { return append(acc, i) }
	merge := func(dst, src []int) []int { return append(dst, src...) }
	for _, workers := range []int{1, 2, 3, 7, 64, n, n + 9} {
		got, err := Run(context.Background(), points, workers, noState, kernel, merge)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: %d indices, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: index %d out of order (got %d)", workers, i, v)
			}
		}
	}
}

func TestRunPerWorkerState(t *testing.T) {
	// Each worker must get its own state instance, built once.
	var built atomic.Int64
	type state struct{ id int64 }
	newState := func() (*state, error) { return &state{id: built.Add(1)}, nil }
	points := testPoints(4000)
	const workers = 4
	got, err := Run(context.Background(), points, workers, newState,
		func(s *state, acc map[int64]int, _ int, _ geom.Vec) map[int64]int {
			if acc == nil {
				acc = make(map[int64]int)
			}
			acc[s.id]++
			return acc
		},
		func(dst, src map[int64]int) map[int64]int {
			for k, v := range src {
				dst[k] += v
			}
			return dst
		})
	if err != nil {
		t.Fatal(err)
	}
	if built.Load() != workers {
		t.Errorf("built %d states, want %d", built.Load(), workers)
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != len(points) {
		t.Errorf("processed %d points, want %d", total, len(points))
	}
}

func TestRunEmptyPoints(t *testing.T) {
	got, err := Run(context.Background(), nil, 8, noState,
		func(_ struct{}, acc int, _ int, _ geom.Vec) int { return acc + 1 },
		func(dst, src int) int { return dst + src })
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty sweep = %d, want zero value", got)
	}
}

func TestRunStateFactoryError(t *testing.T) {
	sentinel := errors.New("no state")
	for _, workers := range []int{1, 4} {
		_, err := Run(context.Background(), testPoints(100), workers,
			func() (struct{}, error) { return struct{}{}, sentinel },
			func(_ struct{}, acc int, _ int, _ geom.Vec) int { return acc },
			func(dst, _ int) int { return dst })
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error = %v, want sentinel", workers, err)
		}
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Run(ctx, testPoints(10000), 4, noState,
		func(_ struct{}, acc int, _ int, _ geom.Vec) int { calls.Add(1); return acc + 1 },
		func(dst, src int) int { return dst + src })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("kernel ran %d times on a pre-cancelled context", calls.Load())
	}
}

func TestRunCancellationStopsPromptly(t *testing.T) {
	const n = 1 << 20
	points := testPoints(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var processed atomic.Int64
	for _, workers := range []int{1, 4} {
		processed.Store(0)
		_, err := Run(ctx, points, workers, noState,
			func(_ struct{}, acc int, _ int, _ geom.Vec) int {
				// Cancel from inside the sweep once a little work is done:
				// workers must notice at their next periodic check.
				if processed.Add(1) == 100 {
					cancel()
				}
				return acc + 1
			},
			func(dst, src int) int { return dst + src })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: error = %v, want context.Canceled", workers, err)
		}
		// Every worker may run to its next check interval, no further.
		if got := processed.Load(); got > int64(workers*cancelCheckInterval+100) {
			t.Errorf("workers=%d: processed %d points after cancellation", workers, got)
		}
		ctx, cancel = context.WithCancel(context.Background())
		defer cancel()
	}
}

func TestMapReturnsResultsInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		got, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		res, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			if i == 13 {
				return 0, sentinel
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: error = %v, want sentinel", workers, err)
		}
		if res != nil {
			t.Errorf("workers=%d: results = %v, want nil on error", workers, res)
		}
	}
}

func TestMapErrorStopsNewItems(t *testing.T) {
	var started atomic.Int64
	sentinel := errors.New("early")
	_, err := Map(context.Background(), 1<<20, 4, func(i int) (int, error) {
		started.Add(1)
		return 0, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sentinel", err)
	}
	if got := started.Load(); got > 64 {
		t.Errorf("%d items started after first error", got)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Map(ctx, 100, 4, func(i int) (int, error) { return i, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestMapZeroItems(t *testing.T) {
	got, err := Map(context.Background(), 0, 4, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0 items) = %v, %v; want nil, nil", got, err)
	}
}

func TestNormalizeWorkers(t *testing.T) {
	cases := []struct{ workers, items, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{5, 100, 5},
		{8, 3, 3},
		{4, 0, 1},
	}
	for _, c := range cases {
		if got := normalizeWorkers(c.workers, c.items); got != c.want {
			t.Errorf("normalizeWorkers(%d, %d) = %d, want %d", c.workers, c.items, got, c.want)
		}
	}
}
