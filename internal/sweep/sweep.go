// Package sweep is the repository's shared parallel execution engine
// for point sweeps: evaluating a coverage predicate (or any other
// kernel) over a large slice of sample points — the paper's √(n·ln n)
// dense grid, barrier samples, Monte-Carlo probe points — and folding
// the per-point results into one aggregate.
//
// Every sweeping layer of the repository (internal/core region surveys,
// internal/barrier, internal/holes grid labelling, internal/experiment
// point sweeps) runs through this package, so scheduling, worker-state
// management, cancellation, and panic isolation exist exactly once.
//
// # Fault tolerance
//
// A panic raised by a kernel, a map function, or a worker-state factory
// is recovered inside the engine and surfaced as a *PanicError through
// the normal error return: peers are cancelled, in-flight workers drain
// cleanly, and the process never crashes. See PanicError.
//
// # Determinism
//
// Run splits the points into at most `workers` contiguous chunks and
// merges the chunk aggregates in chunk order. As long as the caller's
// merge is exact for reordered *chunk boundaries* (integer counters,
// minima, order-preserving appends — everything this repository
// aggregates), the result is bit-identical to the sequential sweep at
// any worker count. Map assigns items to workers dynamically but stores
// results by index, so its output order is deterministic too.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"fullview/internal/geom"
)

// cancelCheckInterval is how many points a worker processes between
// context checks: coarse enough to stay off the hot path, fine enough
// that cancellation lands within microseconds of real work.
const cancelCheckInterval = 256

// normalizeWorkers resolves the worker-count convention used across the
// repository: ≤ 0 means GOMAXPROCS, and the count never exceeds the
// number of work items.
func normalizeWorkers(workers, items int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run evaluates kernel over every point with the given number of
// workers (GOMAXPROCS when workers ≤ 0) and folds the results into one
// aggregate of type T.
//
// Each worker owns a private state S built once by newState — typically
// a cloned coverage checker over a shared immutable spatial index — and
// folds its contiguous chunk of points into a private accumulator
// (starting from T's zero value) by calling kernel(state, acc, i, p)
// for every point index i. Chunk accumulators are then combined with
// merge in chunk order.
//
// Run returns early with ctx.Err() when the context is cancelled
// (workers notice within cancelCheckInterval points), and with the
// factory's error when newState fails. On error the aggregate is T's
// zero value.
//
// A panic inside kernel or newState never crashes the process: the
// worker recovers it into a *PanicError carrying the item index, the
// worker id, and the captured stack, cancels its peers, and Run returns
// the *PanicError through the ordinary error path after the remaining
// workers drain.
func Run[S, T any](
	ctx context.Context,
	points []geom.Vec,
	workers int,
	newState func() (S, error),
	kernel func(state S, acc T, i int, p geom.Vec) T,
	merge func(dst, src T) T,
) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if len(points) == 0 {
		return zero, nil
	}
	workers = normalizeWorkers(workers, len(points))
	return runParallel(ctx, len(points), workers, merge,
		func(ctx context.Context, w, lo, hi int) (T, error) {
			return runChunk(ctx, w, lo, hi, points, newState, kernel)
		})
}

// runChunk executes one worker's contiguous chunk [lo, hi) with panic
// isolation: the state factory and every kernel call run under a
// recover guard that converts a panic into a *PanicError naming the
// item being processed (or the state setup) and this worker.
func runChunk[S, T any](
	ctx context.Context,
	worker, lo, hi int,
	points []geom.Vec,
	newState func() (S, error),
	kernel func(state S, acc T, i int, p geom.Vec) T,
) (T, error) {
	var acc, zero T
	var innerErr error
	item := -1 // -1 while constructing worker state
	if perr := guard(worker, &item, func() {
		state, err := newState()
		if err != nil {
			innerErr = err
			return
		}
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					innerErr = err
					return
				}
			}
			item = i
			acc = kernel(state, acc, i, points[i])
		}
	}); perr != nil {
		return zero, perr
	}
	if innerErr != nil {
		return zero, innerErr
	}
	return acc, nil
}

// selectError picks the error to report from per-worker results. The
// lowest worker index wins among real failures so the report is
// deterministic; cancellation errors that merely echo a peer's failure
// (the parent context is still live) never mask the failure that
// triggered them.
func selectError(parent context.Context, errs []error) error {
	var cancellation error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancellation == nil {
				cancellation = err
			}
			continue
		}
		return err
	}
	if err := parent.Err(); err != nil {
		return err
	}
	return cancellation
}

// Map runs fn over the indices 0..n-1 with the given number of workers
// (GOMAXPROCS when workers ≤ 0) and returns the results in index order.
// Items are handed to workers dynamically (work stealing), which suits
// heterogeneous-duration items such as Monte-Carlo trials; determinism
// must come from fn itself (e.g. a per-index RNG stream).
//
// The first error aborts the run: no further items start, in-flight
// items finish, and that error is returned with a nil slice. A
// cancelled context likewise aborts with ctx.Err().
//
// A panic inside fn is recovered into a *PanicError (item index, worker
// id, stack) and aborts the run exactly like an ordinary error; the
// process never crashes.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, nil
	}
	workers = normalizeWorkers(workers, n)

	results := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out, err := mapItem(0, i, fn)
			if err != nil {
				return nil, err
			}
			results[i] = out
		}
		return results, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || runCtx.Err() != nil {
					return
				}
				out, err := mapItem(w, i, fn)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
				results[i] = out
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The parent context may have been cancelled mid-run, leaving a
	// partially-filled results slice; report that rather than returning
	// incomplete data.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// mapItem runs fn(i) under the worker's panic guard.
func mapItem[T any](worker, i int, fn func(i int) (T, error)) (T, error) {
	var out T
	var err error
	item := i
	if perr := guard(worker, &item, func() { out, err = fn(i) }); perr != nil {
		return out, perr
	}
	return out, err
}
