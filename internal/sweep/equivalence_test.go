package sweep_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"fullview/internal/barrier"
	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// equivalenceWorkers is the worker set every sequential/parallel
// equivalence assertion runs over.
func equivalenceWorkers() []int {
	return []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
}

// seededCheckers builds one checker per table case: homogeneous and
// heterogeneous profiles, uniform and Poisson deployments, several
// effective angles — all seeded, so failures reproduce exactly.
func seededCheckers(t *testing.T) map[string]*core.Checker {
	t.Helper()
	homogeneous, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := sensor.NewProfile(
		sensor.GroupSpec{Fraction: 0.4, Radius: 0.22, Aperture: math.Pi / 3},
		sensor.GroupSpec{Fraction: 0.6, Radius: 0.12, Aperture: 2 * math.Pi / 3},
	)
	if err != nil {
		t.Fatal(err)
	}

	checkers := make(map[string]*core.Checker)
	add := func(name string, net *sensor.Network, err error, theta float64) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		c, err := core.NewChecker(net, theta)
		if err != nil {
			t.Fatal(err)
		}
		checkers[name] = c
	}
	net, err := deploy.Uniform(geom.UnitTorus, homogeneous, 700, rng.New(11, 0))
	add("uniform/homogeneous", net, err, math.Pi/4)
	net, err = deploy.Uniform(geom.UnitTorus, mixed, 900, rng.New(12, 0))
	add("uniform/heterogeneous", net, err, math.Pi/3)
	net, err = deploy.Poisson(geom.UnitTorus, homogeneous, 500, rng.New(13, 0))
	add("poisson/homogeneous", net, err, math.Pi/2)
	// Deliberately sparse so the region has holes and barrier gaps: the
	// MinCovering and gap-witness paths must agree too.
	net, err = deploy.Uniform(geom.UnitTorus, homogeneous, 60, rng.New(14, 0))
	add("uniform/sparse", net, err, math.Pi/5)
	return checkers
}

// TestRegionSweepEquivalence asserts that SurveyRegion (sequential),
// SurveyRegionParallel, and SurveyRegionContext — all running through
// the sweep engine — produce identical RegionStats at every worker
// count on seeded deployments.
func TestRegionSweepEquivalence(t *testing.T) {
	for name, checker := range seededCheckers(t) {
		checker := checker
		t.Run(name, func(t *testing.T) {
			points, err := deploy.GridPoints(geom.UnitTorus, 37)
			if err != nil {
				t.Fatal(err)
			}
			want := checker.SurveyRegion(points)
			for _, workers := range equivalenceWorkers() {
				if got := checker.SurveyRegionParallel(points, workers); got != want {
					t.Errorf("SurveyRegionParallel(workers=%d) = %+v, want %+v", workers, got, want)
				}
				got, err := checker.SurveyRegionContext(context.Background(), points, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got != want {
					t.Errorf("SurveyRegionContext(workers=%d) = %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

// TestBarrierSweepEquivalence asserts the barrier survey produces
// identical BarrierStats — including the first-gap witness point — at
// every worker count.
func TestBarrierSweepEquivalence(t *testing.T) {
	diagonal, err := barrier.New(geom.V(0, 0.1), geom.V(0.6, 0.8), geom.V(1, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	for name, checker := range seededCheckers(t) {
		checker := checker
		t.Run(name, func(t *testing.T) {
			for _, line := range []barrier.Barrier{barrier.Horizontal(0.5), diagonal} {
				want, err := barrier.Survey(checker, line, 0.005)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range equivalenceWorkers() {
					got, err := barrier.SurveyContext(context.Background(), checker, line, 0.005, workers)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if got != want {
						t.Errorf("SurveyContext(workers=%d) = %+v, want %+v", workers, got, want)
					}
				}
			}
		})
	}
}

// TestRegionSweepCancellation asserts a context cancelled mid-sweep
// stops a large survey promptly instead of running it to completion.
func TestRegionSweepCancellation(t *testing.T) {
	profile, err := sensor.Homogeneous(0.15, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, 3000, rng.New(15, 0))
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	// A grid big enough that the full sweep takes far longer than the
	// cancellation deadline.
	points, err := deploy.GridPoints(geom.UnitTorus, 400)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	stats, err := checker.SurveyRegionContext(ctx, points, 4)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if stats != (core.RegionStats{}) {
		t.Errorf("cancelled sweep returned stats %+v", stats)
	}
	// The full 160k-point sweep takes seconds; a prompt abort does not.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled sweep took %v to return", elapsed)
	}
}
