package sweep

import (
	"context"
	"sync"

	"fullview/internal/geom"
)

// BatchSize is the number of consecutive points a batch kernel receives
// per call. It matches cancelCheckInterval — a batch is also the unit of
// cancellation polling — and is small enough that per-worker batch
// scratch stays cache-resident while large enough to amortise the
// cell-sorted gather's per-batch setup.
const BatchSize = 256

// RunBatch is Run for kernels that evaluate whole point batches at
// once: each worker walks its contiguous chunk in BatchSize sub-slices
// and calls kernel(state, acc, lo, pts) per sub-slice, where lo is the
// global index of pts[0]. Everything else — worker-state factories,
// chunk-order merging, cancellation (checked before every sub-slice),
// and panic containment (a *PanicError's Item is the batch's first
// index) — behaves exactly like Run.
//
// Because chunk and batch boundaries only affect how points are grouped
// (never which points are evaluated, nor their order within the fold),
// a kernel whose per-point results are grouping-independent and whose
// merge is exact at chunk boundaries gives results bit-identical to the
// sequential sweep at any worker count, just like Run.
func RunBatch[S, T any](
	ctx context.Context,
	points []geom.Vec,
	workers int,
	newState func() (S, error),
	kernel func(state S, acc T, lo int, pts []geom.Vec) T,
	merge func(dst, src T) T,
) (T, error) {
	var zero T
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	if len(points) == 0 {
		return zero, nil
	}
	workers = normalizeWorkers(workers, len(points))
	return runParallel(ctx, len(points), workers, merge,
		func(ctx context.Context, w, lo, hi int) (T, error) {
			return runBatchChunk(ctx, w, lo, hi, points, newState, kernel)
		})
}

// runBatchChunk executes one worker's contiguous chunk [lo, hi) in
// BatchSize sub-slices under the same panic guard as runChunk; the
// guarded item index is the current batch's first point.
func runBatchChunk[S, T any](
	ctx context.Context,
	worker, lo, hi int,
	points []geom.Vec,
	newState func() (S, error),
	kernel func(state S, acc T, lo int, pts []geom.Vec) T,
) (T, error) {
	var acc, zero T
	var innerErr error
	item := -1 // -1 while constructing worker state
	if perr := guard(worker, &item, func() {
		state, err := newState()
		if err != nil {
			innerErr = err
			return
		}
		for b := lo; b < hi; b += BatchSize {
			if err := ctx.Err(); err != nil {
				innerErr = err
				return
			}
			e := b + BatchSize
			if e > hi {
				e = hi
			}
			item = b
			acc = kernel(state, acc, b, points[b:e])
		}
	}); perr != nil {
		return zero, perr
	}
	if innerErr != nil {
		return zero, innerErr
	}
	return acc, nil
}

// runParallel is the fan-out/merge core shared by Run and RunBatch: it
// splits n items into at most `workers` contiguous chunks, runs chunkFn
// per chunk, surfaces the deterministic error choice of selectError,
// and merges the chunk aggregates in chunk order. workers must already
// be normalized.
func runParallel[T any](
	ctx context.Context,
	n, workers int,
	merge func(dst, src T) T,
	chunkFn func(ctx context.Context, w, lo, hi int) (T, error),
) (T, error) {
	var zero T
	if workers == 1 {
		return chunkFn(ctx, 0, 0, n)
	}

	// Contiguous chunks; merged in chunk order below, so the fold order
	// over items is exactly the sequential order at every boundary.
	chunk := (n + workers - 1) / workers
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	partials := make([]T, workers)
	used := make([]bool, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		used[w] = true
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc, err := chunkFn(ctx, w, lo, hi)
			if err != nil {
				errs[w] = err
				cancel()
				return
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()

	if err := selectError(parent, errs); err != nil {
		return zero, err
	}
	acc := zero
	first := true
	for w := 0; w < workers; w++ {
		if !used[w] {
			continue
		}
		if first {
			acc = partials[w]
			first = false
			continue
		}
		acc = merge(acc, partials[w])
	}
	return acc, nil
}
