package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"fullview/internal/depcache"
	"fullview/internal/depjournal"
	"fullview/internal/faultinject"
	"fullview/internal/spatial"
)

// errNotDurable classifies a registration rejected because the durable
// journal could not record it; handleRegister maps it to 503.
var errNotDurable = errors.New("registration not durable: journal write failed")

// journalFile is the deployment journal's name inside the state dir.
const journalFile = "deployments.jsonl"

// Readiness states reported by GET /readyz.
const (
	// ReadyStarting: the startup journal replay is still warming the
	// cache. Journaled ids already answer (rebuilt lazily on first use);
	// the state exists so orchestrators can hold traffic until the cache
	// is warm.
	ReadyStarting = "starting"
	// ReadyOK: fully operational.
	ReadyOK = "ok"
	// ReadyDegraded: the deployment journal is failing to persist new
	// registrations. Queries and surveys keep answering from memory;
	// registrations are refused with 503 until a journal write succeeds
	// again.
	ReadyDegraded = "degraded"
)

// openState opens the durable deployment journal under cfg.StateDir and
// registers its metrics. Called from New before the server starts
// serving.
func (s *Server) openState() error {
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("server: create state dir: %w", err)
	}
	j, err := depjournal.Open(filepath.Join(s.cfg.StateDir, journalFile),
		depjournal.Options{CompactBytes: s.cfg.JournalCompactBytes})
	if err != nil {
		return fmt.Errorf("server: open deployment journal: %w", err)
	}
	s.journal = j
	s.m.reg.GaugeFunc("fvcd_journal_deployments",
		"Deployments recorded in the durable journal.",
		func() float64 { return float64(j.Len()) })
	s.m.reg.GaugeFunc("fvcd_journal_bytes",
		"Deployment journal file size in bytes.",
		func() float64 { return float64(j.Size()) })
	return nil
}

// warmup replays the journal into the deployment cache in the
// background and then marks the server ready. Only the most recent
// CacheSize registrations are rebuilt eagerly (older ones would be
// evicted immediately); anything journaled but not warmed is rebuilt
// lazily by deployment() on first use, so correctness never waits on
// the warm-up — only cache temperature does.
func (s *Server) warmup() {
	defer close(s.ready)
	if s.journal == nil {
		return
	}
	if err := faultinject.Fire(faultinject.JournalReplay); err != nil {
		s.logf("journal replay: injected fault: %v", err)
	}
	recs := s.journal.Records()
	warm := recs
	if len(warm) > s.cfg.CacheSize {
		warm = warm[len(warm)-s.cfg.CacheSize:]
	}
	warmed := 0
	for _, rec := range warm {
		if _, ok := s.reviveRecord(rec); ok {
			warmed++
		}
	}
	if len(recs) > 0 {
		s.logf("journal: replayed %d deployments (%d warmed into cache)", len(recs), warmed)
	}
}

// revive rebuilds a journaled deployment that is not (or no longer) in
// the cache, so journal-backed ids survive both restarts and LRU
// eviction.
func (s *Server) revive(id string) (*depcache.Entry, bool) {
	if s.journal == nil {
		return nil, false
	}
	rec, ok := s.journal.Lookup(id)
	if !ok {
		return nil, false
	}
	return s.reviveRecord(rec)
}

// reviveRecord rebuilds one journal record into the cache, verifying
// that the rebuilt network still fingerprints to the journaled id — a
// mismatch (corrupt record, or a record from an incompatible build)
// is skipped with a log line rather than served under a wrong id.
func (s *Server) reviveRecord(rec depjournal.Record) (*depcache.Entry, bool) {
	req := requestFromRecord(rec)
	net, err := s.buildNetwork(&req)
	if err != nil {
		s.logf("journal: cannot rebuild deployment %s: %v", rec.ID, err)
		return nil, false
	}
	fp := depcache.Fingerprint(net)
	if fp != rec.ID {
		s.logf("journal: record %s rebuilds to fingerprint %s; skipping", rec.ID, fp)
		return nil, false
	}
	entry, _, err := s.cache.GetOrBuild(fp, func() (*depcache.Entry, error) {
		if err := faultinject.Fire(faultinject.DepcacheBuild); err != nil {
			return nil, err
		}
		return &depcache.Entry{Fingerprint: fp, Net: net, Index: spatial.NewIndex(net)}, nil
	})
	if err != nil {
		s.logf("journal: cannot rebuild index for %s: %v", rec.ID, err)
		return nil, false
	}
	return entry, true
}

// persist journals a new registration. Failure marks the service
// degraded and surfaces as errNotDurable (the caller's 503); the next
// successful journal write clears the degraded state.
func (s *Server) persist(id string, req *registerRequest) error {
	if s.journal == nil {
		return nil
	}
	if s.journal.Has(id) {
		return nil
	}
	if err := s.journal.Append(recordFromRequest(id, req)); err != nil {
		s.m.journalFailures.Inc()
		s.setJournalErr(err)
		s.logf("journal: append %s failed: %v", id, err)
		return fmt.Errorf("%w: %v", errNotDurable, err)
	}
	s.setJournalErr(nil)
	return nil
}

// setJournalErr records the journal's health for /readyz.
func (s *Server) setJournalErr(err error) {
	s.stateMu.Lock()
	s.journalErr = err
	s.stateMu.Unlock()
}

// readiness derives the /readyz state.
func (s *Server) readiness() (state, reason string) {
	select {
	case <-s.ready:
	default:
		return ReadyStarting, "journal replay in progress"
	}
	if s.journal == nil {
		return ReadyOK, ""
	}
	s.stateMu.Lock()
	err := s.journalErr
	s.stateMu.Unlock()
	if err != nil {
		return ReadyDegraded, "journal writes failing (registrations 503, queries unaffected): " + err.Error()
	}
	return ReadyOK, ""
}

// recordFromRequest converts a registration request (plus its computed
// fingerprint id) to its journal record.
func recordFromRequest(id string, req *registerRequest) depjournal.Record {
	rec := depjournal.Record{
		ID:      id,
		Torus:   req.Torus,
		Profile: req.Profile,
		N:       req.N,
		Density: req.Density,
		Deploy:  req.Deploy,
		Seed:    req.Seed,
	}
	if len(req.Cameras) > 0 {
		rec.Cameras = make([]depjournal.Camera, len(req.Cameras))
		for i, c := range req.Cameras {
			rec.Cameras[i] = depjournal.Camera{
				X: c.X, Y: c.Y, Orient: c.Orient,
				Radius: c.Radius, Aperture: c.Aperture, Group: c.Group,
			}
		}
	}
	return rec
}

// requestFromRecord is the inverse conversion, feeding the journal
// record back through the exact registration build path so replayed
// deployments are bit-identical to their originals.
func requestFromRecord(rec depjournal.Record) registerRequest {
	req := registerRequest{
		Torus:   rec.Torus,
		Profile: rec.Profile,
		N:       rec.N,
		Density: rec.Density,
		Deploy:  rec.Deploy,
		Seed:    rec.Seed,
	}
	if len(rec.Cameras) > 0 {
		req.Cameras = make([]cameraJSON, len(rec.Cameras))
		for i, c := range rec.Cameras {
			req.Cameras[i] = cameraJSON{
				X: c.X, Y: c.Y, Orient: c.Orient,
				Radius: c.Radius, Aperture: c.Aperture, Group: c.Group,
			}
		}
	}
	return req
}
