package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"fullview/internal/depcache"
	"fullview/internal/depjournal"
	"fullview/internal/faultinject"
	"fullview/internal/geom"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// errNotDurable classifies a registration or mutation rejected because
// the durable journal could not record it; the handlers map it to 503
// with a jittered Retry-After.
var errNotDurable = errors.New("not durable: journal write failed")

// journalFile is the deployment journal's name inside the state dir.
const journalFile = "deployments.jsonl"

// Readiness states reported by GET /readyz.
const (
	// ReadyStarting: the startup journal replay is still warming the
	// cache. Journaled ids already answer (rebuilt lazily on first use);
	// the state exists so orchestrators can hold traffic until the cache
	// is warm.
	ReadyStarting = "starting"
	// ReadyOK: fully operational.
	ReadyOK = "ok"
	// ReadyDegraded: the deployment journal is failing to persist new
	// registrations. Queries and surveys keep answering from memory;
	// registrations are refused with 503 until a journal write succeeds
	// again.
	ReadyDegraded = "degraded"
)

// openState opens the durable deployment journal under cfg.StateDir and
// registers its metrics. Called from New before the server starts
// serving.
func (s *Server) openState() error {
	if err := os.MkdirAll(s.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("server: create state dir: %w", err)
	}
	path := filepath.Join(s.cfg.StateDir, journalFile)
	// A clustered replica with no local journal yet warms from a peer
	// snapshot before opening, so a replaced node starts with the
	// cluster's full deployment history. Best-effort: every failure
	// mode falls back to a cold start (see maybeWarmFromPeer).
	if s.cluster != nil {
		s.maybeWarmFromPeer(path)
	}
	j, err := depjournal.Open(path,
		depjournal.Options{
			CompactBytes: s.cfg.JournalCompactBytes,
			// The fold hook lets compaction absorb mutation records into
			// recipe-form registrations by materialising the recipe through
			// the exact registration build path.
			Materialize: s.materializeRecord,
		})
	if err != nil {
		return fmt.Errorf("server: open deployment journal: %w", err)
	}
	s.journal = j
	s.m.reg.GaugeFunc("fvcd_journal_deployments",
		"Deployments recorded in the durable journal.",
		func() float64 { return float64(j.Len()) })
	s.m.reg.GaugeFunc("fvcd_journal_bytes",
		"Deployment journal file size in bytes.",
		func() float64 { return float64(j.Size()) })
	return nil
}

// warmup replays the journal into the deployment cache in the
// background and then marks the server ready. Only the most recent
// CacheSize registrations are rebuilt eagerly (older ones would be
// evicted immediately); anything journaled but not warmed is rebuilt
// lazily by deployment() on first use, so correctness never waits on
// the warm-up — only cache temperature does.
func (s *Server) warmup() {
	defer close(s.ready)
	if s.journal != nil {
		if err := faultinject.Fire(faultinject.JournalReplay); err != nil {
			s.logf("journal replay: injected fault: %v", err)
		}
		recs := s.journal.Records()
		warm := recs
		if len(warm) > s.cfg.CacheSize {
			warm = warm[len(warm)-s.cfg.CacheSize:]
		}
		warmed := 0
		for _, rec := range warm {
			if _, ok := s.reviveRecord(rec); ok {
				warmed++
			}
		}
		if len(recs) > 0 {
			s.logf("journal: replayed %d deployments (%d warmed into cache)", len(recs), warmed)
		}
	}
	// The job replay runs after the deployment replay so resumed jobs
	// can revive the deployments they survey; /readyz stays "starting"
	// until both finish. Start also launches the job worker pools, so a
	// stateless server passes through here too.
	s.jobs.Start()
}

// revive rebuilds a journaled deployment that is not (or no longer) in
// the cache, so journal-backed ids survive both restarts and LRU
// eviction.
func (s *Server) revive(id string) (*depcache.Entry, bool) {
	if s.journal == nil {
		return nil, false
	}
	rec, ok := s.journal.Lookup(id)
	if !ok {
		return nil, false
	}
	return s.reviveRecord(rec)
}

// reviveRecord rebuilds one journal record into the cache.
func (s *Server) reviveRecord(rec depjournal.Record) (*depcache.Entry, bool) {
	entry, _, err := s.cache.GetOrBuild(rec.ID, func() (*depcache.Entry, error) {
		if err := faultinject.Fire(faultinject.DepcacheBuild); err != nil {
			return nil, err
		}
		return s.entryFromRecord(rec)
	})
	if err != nil {
		s.logf("journal: cannot revive deployment %s: %v", rec.ID, err)
		return nil, false
	}
	return entry, true
}

// entryFromRecord rebuilds one journaled deployment: the base network
// through the exact registration build path, then every journaled
// mutation replayed in order, so the revived index answers
// bit-identically to the pre-crash (or pre-eviction) one. It is the
// single rebuild path shared by revival and by handleRegister's
// build-on-miss closure — both must see the mutated state, never the
// client's base request.
//
// An unfolded record is verified to still fingerprint to its journaled
// id (a mismatch means corruption or an incompatible build, and must
// not be served under a wrong id). A compaction-folded record skips the
// check by design — its camera list is the folded live state, not the
// base registration the id fingerprints — and resumes version counting
// at the folded-in BaseVersion.
func (s *Server) entryFromRecord(rec depjournal.Record) (*depcache.Entry, error) {
	req := requestFromRecord(rec)
	net, err := s.buildNetwork(&req)
	if err != nil {
		return nil, fmt.Errorf("rebuild network: %w", err)
	}
	if !rec.Folded {
		if fp := depcache.Fingerprint(net); fp != rec.ID {
			return nil, fmt.Errorf("record rebuilds to fingerprint %s, not its id", fp)
		}
	}
	e := &depcache.Entry{
		Fingerprint: rec.ID,
		Net:         net,
		Index:       spatial.NewMutableIndex(net, s.mutableOpts(rec.BaseVersion)),
	}
	for i, mut := range s.journal.Mutations(rec.ID) {
		if err := applyMutationRecord(e.Index, mut); err != nil {
			return nil, fmt.Errorf("replay mutation %d (%s): %w", i, mut.Op, err)
		}
	}
	return e, nil
}

// applyMutationRecord replays one journaled mutation onto a live index.
func applyMutationRecord(ix *spatial.MutableIndex, mut depjournal.Record) error {
	switch mut.Op {
	case depjournal.OpReaim:
		ops := make([]spatial.ReaimOp, len(mut.Reaim))
		for i, op := range mut.Reaim {
			ops[i] = spatial.ReaimOp{Index: op.I, Orient: op.Orient}
		}
		_, err := ix.Reaim(ops)
		return err
	case depjournal.OpRemove:
		_, err := ix.Remove(mut.Remove)
		return err
	case depjournal.OpAdd:
		cams := make([]sensor.Camera, len(mut.Cameras))
		for i, c := range mut.Cameras {
			cams[i] = sensor.Camera{
				Pos:      geom.V(c.X, c.Y),
				Orient:   c.Orient,
				Radius:   c.Radius,
				Aperture: c.Aperture,
				Group:    c.Group,
			}
		}
		_, err := ix.Add(cams)
		return err
	default:
		return fmt.Errorf("unknown mutation op %q", mut.Op)
	}
}

// mutableOpts builds the MutableOptions every served index shares:
// the configured rebuild threshold and the rebuild telemetry hook.
func (s *Server) mutableOpts(baseVersion uint64) spatial.MutableOptions {
	return spatial.MutableOptions{
		RebuildFraction: s.cfg.RebuildFraction,
		BaseVersion:     baseVersion,
		OnRebuild:       func() { s.m.rebuilds.Inc() },
	}
}

// materializeRecord resolves a recipe-form journal record to its flat
// camera list for compaction folding, through the exact registration
// build path so the folded list is bit-identical to the live one.
func (s *Server) materializeRecord(rec depjournal.Record) ([]depjournal.Camera, error) {
	req := requestFromRecord(rec)
	net, err := s.buildNetwork(&req)
	if err != nil {
		return nil, err
	}
	cams := net.Cameras()
	out := make([]depjournal.Camera, len(cams))
	for i, c := range cams {
		out[i] = depjournal.Camera{X: c.Pos.X, Y: c.Pos.Y, Orient: c.Orient,
			Radius: c.Radius, Aperture: c.Aperture, Group: c.Group}
	}
	return out, nil
}

// persist journals a new registration. Failure marks the service
// degraded and surfaces as errNotDurable (the caller's 503); the next
// successful journal write clears the degraded state.
func (s *Server) persist(id string, req *registerRequest) error {
	if s.journal == nil {
		return nil
	}
	if s.journal.Has(id) {
		return nil
	}
	rec := recordFromRequest(id, req)
	if err := s.journal.Append(rec); err != nil {
		s.m.journalFailures.Inc()
		s.setJournalErr(err)
		s.logf("journal: append %s failed: %v", id, err)
		return fmt.Errorf("%w: %v", errNotDurable, err)
	}
	s.setJournalErr(nil)
	// Mirror only after the local append succeeded: the local journal
	// is the source of truth, and the mirror stream must never carry a
	// record that was refused here.
	s.mirrorRecords([]depjournal.Record{rec})
	return nil
}

// persistMutations journals one PATCH batch before it is applied, with
// the same degraded-state bookkeeping as persist. Stateless servers
// (no journal) apply mutations in memory only.
func (s *Server) persistMutations(id string, recs []depjournal.Record) error {
	if s.journal == nil || len(recs) == 0 {
		return nil
	}
	if err := s.journal.AppendMutations(id, recs); err != nil {
		s.m.journalFailures.Inc()
		s.setJournalErr(err)
		s.logf("journal: mutate %s failed: %v", id, err)
		return fmt.Errorf("%w: %v", errNotDurable, err)
	}
	s.setJournalErr(nil)
	s.mirrorRecords(recs)
	return nil
}

// setJournalErr records the journal's health for /readyz.
func (s *Server) setJournalErr(err error) {
	s.stateMu.Lock()
	s.journalErr = err
	s.stateMu.Unlock()
}

// readiness derives the /readyz state.
func (s *Server) readiness() (state, reason string) {
	select {
	case <-s.ready:
	default:
		return ReadyStarting, "journal replay in progress"
	}
	if s.journal != nil {
		s.stateMu.Lock()
		err, werr := s.journalErr, s.warmErr
		s.stateMu.Unlock()
		if err != nil {
			return ReadyDegraded, "journal writes failing (registrations 503, queries unaffected): " + err.Error()
		}
		if werr != nil {
			return ReadyDegraded, "peer snapshot warm failed at startup (serving cold; restart to retry): " + werr.Error()
		}
	}
	if err := s.jobs.JournalErr(); err != nil {
		return ReadyDegraded, "job journal writes failing (jobs run memory-only): " + err.Error()
	}
	return ReadyOK, ""
}

// recordFromRequest converts a registration request (plus its computed
// fingerprint id) to its journal record.
func recordFromRequest(id string, req *registerRequest) depjournal.Record {
	rec := depjournal.Record{
		ID:      id,
		Torus:   req.Torus,
		Profile: req.Profile,
		N:       req.N,
		Density: req.Density,
		Deploy:  req.Deploy,
		Seed:    req.Seed,
	}
	if len(req.Cameras) > 0 {
		rec.Cameras = make([]depjournal.Camera, len(req.Cameras))
		for i, c := range req.Cameras {
			rec.Cameras[i] = depjournal.Camera{
				X: c.X, Y: c.Y, Orient: c.Orient,
				Radius: c.Radius, Aperture: c.Aperture, Group: c.Group,
			}
		}
	}
	return rec
}

// requestFromRecord is the inverse conversion, feeding the journal
// record back through the exact registration build path so replayed
// deployments are bit-identical to their originals.
func requestFromRecord(rec depjournal.Record) registerRequest {
	req := registerRequest{
		Torus:   rec.Torus,
		Profile: rec.Profile,
		N:       rec.N,
		Density: rec.Density,
		Deploy:  rec.Deploy,
		Seed:    rec.Seed,
	}
	if len(rec.Cameras) > 0 {
		req.Cameras = make([]cameraJSON, len(rec.Cameras))
		for i, c := range rec.Cameras {
			req.Cameras[i] = cameraJSON{
				X: c.X, Y: c.Y, Orient: c.Orient,
				Radius: c.Radius, Aperture: c.Aperture, Group: c.Group,
			}
		}
	}
	return req
}
