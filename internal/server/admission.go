package server

import (
	"context"
	"errors"
	"math/rand/v2"
	"strconv"
	"time"

	"fullview/internal/telemetry"
)

// errSaturated reports that a request waited QueueTimeout for an
// admission slot without getting one.
var errSaturated = errors.New("server: admission queue timed out")

// admission is a bounded-concurrency gate: a channel semaphore of
// MaxInFlight slots plus a queue-wait timeout. It exists so a burst of
// expensive survey requests degrades into prompt 429s instead of an
// unbounded goroutine pile-up — the service's equivalent of load
// shedding.
type admission struct {
	slots   chan struct{}
	timeout time.Duration
	queued  *telemetry.Gauge
}

func newAdmission(maxInFlight int, timeout time.Duration, queued *telemetry.Gauge) *admission {
	return &admission{
		slots:   make(chan struct{}, maxInFlight),
		timeout: timeout,
		queued:  queued,
	}
}

// acquire takes an admission slot, waiting up to the queue timeout.
// It returns errSaturated on timeout and ctx.Err() when the requester
// disconnects while queued. The fast path (free slot) never allocates
// a timer.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	a.queued.Inc()
	defer a.queued.Dec()
	t := time.NewTimer(a.timeout)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-t.C:
		return errSaturated
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by acquire.
func (a *admission) release() { <-a.slots }

// retryAfter returns the Retry-After value for a retryable rejection —
// the 429 of a saturated admission queue and the 503 of a failing
// journal alike: a 1-second base jittered ±20%, so a burst of clients
// rejected in the same instant does not re-stampede on the same second.
// The value is fractional seconds (RFC 9110 specifies integer
// delta-seconds, but rounding to whole seconds would erase the jitter
// entirely; clients that truncate still land on a sane 0 or 1).
func retryAfter() string {
	v := 1 + 0.2*(2*rand.Float64()-1)
	return strconv.FormatFloat(v, 'f', 2, 64)
}
