package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"path/filepath"
	"time"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/jobs"
	"fullview/internal/telemetry"
)

// jobsDirName is the job-journal directory inside StateDir.
const jobsDirName = "jobs"

// jobSubmitRequest asks for an asynchronous survey or sweep. A survey
// takes one angle (thetaPi); a sweep a θ-list (thetasPi). Grid and
// Workers follow the inline survey conventions: Grid 0 selects the
// paper's dense grid for the deployment size, Workers may only lower
// the server's per-band parallelism.
type jobSubmitRequest struct {
	Kind       string    `json:"kind"`
	Deployment string    `json:"deployment"`
	ThetaPi    float64   `json:"thetaPi,omitempty"`
	ThetasPi   []float64 `json:"thetasPi,omitempty"`
	Grid       int       `json:"grid,omitempty"`
	Workers    int       `json:"workers,omitempty"`
}

// jobResponse is the uniform job body answered by submit, poll, and
// cancel. Result appears only on a done job; its stats use the exact-
// integer RegionStats encoding, so two bit-identical runs produce
// byte-identical result JSON.
type jobResponse struct {
	ID         string       `json:"id"`
	Kind       string       `json:"kind"`
	Deployment string       `json:"deployment"`
	Version    uint64       `json:"version,omitempty"`
	State      string       `json:"state"`
	Bands      int          `json:"bands"`
	BandsDone  int          `json:"bandsDone"`
	ThetasPi   []float64    `json:"thetasPi"`
	Grid       int          `json:"grid"`
	Resumed    bool         `json:"resumed,omitempty"`
	Durable    bool         `json:"durable"`
	Error      string       `json:"error,omitempty"`
	Result     *jobs.Result `json:"result,omitempty"`
	CreatedNS  int64        `json:"createdNs"`
	StartedNS  int64        `json:"startedNs,omitempty"`
	FinishedNS int64        `json:"finishedNs,omitempty"`
}

func jobBody(snap jobs.Snapshot) jobResponse {
	resp := jobResponse{
		ID:         snap.ID,
		Kind:       string(snap.Spec.Kind),
		Deployment: snap.Spec.Deployment,
		Version:    snap.Spec.Version,
		State:      string(snap.State),
		Bands:      snap.Bands,
		BandsDone:  snap.BandsDone,
		ThetasPi:   snap.Spec.ThetasPi,
		Grid:       snap.Spec.Grid,
		Resumed:    snap.Resumed,
		Durable:    snap.Durable,
		Error:      snap.Err,
		Result:     snap.Result,
		CreatedNS:  snap.Created.UnixNano(),
	}
	if !snap.Started.IsZero() {
		resp.StartedNS = snap.Started.UnixNano()
	}
	if !snap.Finished.IsZero() {
		resp.FinishedNS = snap.Finished.UnixNano()
	}
	return resp
}

// openJobs builds the job manager (journaling under StateDir/jobs when
// durable) and registers the fvcd_jobs_* metric families. Called from
// New; the manager's replay + worker start happen later, in warmup.
func (s *Server) openJobs() error {
	dir := ""
	if s.cfg.StateDir != "" {
		dir = filepath.Join(s.cfg.StateDir, jobsDirName)
	}
	durations := make(map[jobs.Kind]*telemetry.Histogram)
	for _, k := range jobs.Kinds() {
		durations[k] = s.m.reg.Histogram("fvcd_job_duration_ns",
			"Job wall time from run start to terminal state, by kind.",
			nil, telemetry.L("kind", string(k)))
	}
	logger := s.cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	mgr, err := jobs.New(jobs.Config{
		Dir:         dir,
		QueueDepth:  s.cfg.JobQueue,
		Concurrency: s.cfg.JobConcurrency,
		TTL:         s.cfg.JobTTL,
		Throttle:    s.cfg.JobThrottle,
		Logger:      logger,
		Hooks: jobs.Hooks{
			JobDone: func(k jobs.Kind, _ jobs.State, elapsed time.Duration) {
				durations[k].Observe(elapsed.Nanoseconds())
			},
			BandDone: func(_ jobs.Kind, points int, elapsed time.Duration) {
				s.m.surveyPoints.Add(int64(points))
				if points > 0 {
					s.m.pointCost["job"].Observe(elapsed.Nanoseconds() / int64(points))
				}
			},
		},
	}, s.execJob)
	if err != nil {
		return fmt.Errorf("server: open job state: %w", err)
	}
	s.jobs = mgr
	for _, k := range jobs.Kinds() {
		for _, st := range jobs.States() {
			k, st := k, st
			s.m.reg.CounterFunc("fvcd_jobs_total",
				"Job state transitions by kind and state.",
				func() int64 { return mgr.StateCount(k, st) },
				telemetry.L("kind", string(k)), telemetry.L("state", string(st)))
		}
	}
	s.m.reg.GaugeFunc("fvcd_jobs_inflight", "Jobs currently running.",
		func() float64 { return float64(mgr.Inflight()) })
	s.m.reg.CounterFunc("fvcd_job_bands_total",
		"Job bands completed (journaled when durable).", mgr.BandsDone)
	s.m.reg.CounterFunc("fvcd_job_resume_total",
		"Jobs resumed from their journals after a restart.", mgr.Resumes)
	return nil
}

// execJob is the executor the job manager calls when a job starts (or
// resumes): it resolves the deployment — through the same cache→revive
// path as the synchronous handlers, so journaled ids work after a
// restart — pins one snapshot, verifies the version the job was
// submitted against, and returns the band runner. One band is one grid
// row at one θ; within a band the sweep engine's chunk-order merge
// makes the result independent of the worker count, so a job resumed
// under a different -parallel setting is still bit-identical.
func (s *Server) execJob(spec jobs.Spec) (jobs.BandRunner, error) {
	entry, ok := s.cache.Get(spec.Deployment)
	if !ok {
		entry, ok = s.revive(spec.Deployment)
	}
	if !ok {
		return nil, fmt.Errorf("deployment %s is no longer registered", spec.Deployment)
	}
	view := entry.Index.Snapshot()
	if spec.Version != 0 && view.Version() != spec.Version {
		return nil, fmt.Errorf("deployment %s is at version %d but the job pinned version %d (mutated since submission)",
			spec.Deployment, view.Version(), spec.Version)
	}
	points, err := deploy.GridPoints(view.Torus(), spec.Grid)
	if err != nil {
		return nil, err
	}
	checkers := make([]*core.Checker, spec.Slots())
	for i, tp := range spec.ThetasPi {
		c, err := core.NewCheckerFromSource(view, tp*math.Pi)
		if err != nil {
			return nil, err
		}
		checkers[i] = c
	}
	workers := spec.Workers
	if workers <= 0 || workers > s.cfg.SurveyWorkers {
		workers = s.cfg.SurveyWorkers
	}
	return func(ctx context.Context, band int) (core.RegionStats, error) {
		row := spec.Row(band)
		pts := points[row*spec.Grid : (row+1)*spec.Grid]
		stats, err := checkers[spec.Slot(band)].SurveyRegionContext(ctx, pts, workers)
		if err == nil {
			s.m.points.Add(int64(stats.Points))
		}
		return stats, err
	}, nil
}

// Jobs returns the job manager (for tests and embedders).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// handleJobSubmit accepts a survey or sweep job: the deployment is
// resolved and the grid vetted now (fail fast, 4xx), the compute runs
// later on the job workers. Answers 202 with the queued job body; a
// saturated job queue answers 429 with the same jittered Retry-After as
// the admission gate.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobSubmitRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	thetas := req.ThetasPi
	if req.ThetaPi != 0 {
		if len(thetas) > 0 {
			writeError(w, http.StatusBadRequest, "give thetaPi or thetasPi, not both")
			return
		}
		thetas = []float64{req.ThetaPi}
	}
	if len(thetas) > s.cfg.MaxThetas {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d thetas exceed the cap %d", len(thetas), s.cfg.MaxThetas))
		return
	}
	entry, ok := s.cache.Get(req.Deployment)
	if !ok {
		entry, ok = s.revive(req.Deployment)
	}
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("deployment %q not registered (or evicted); re-register it", req.Deployment))
		return
	}
	view := entry.Index.Snapshot()
	k := req.Grid
	if k <= 0 {
		var err error
		k, err = deploy.DenseGridSide(view.Len())
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	// Same arithmetic-before-allocation vetting as the inline survey:
	// the job grid is materialised at run time, but a hostile grid must
	// be a 400 at submit time.
	if int64(k) > int64(s.cfg.MaxBatchPoints) || int64(k)*int64(k) > int64(s.cfg.MaxBatchPoints) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("survey of %d×%d points exceeds cap %d", k, k, s.cfg.MaxBatchPoints))
		return
	}
	snap, err := s.jobs.Submit(jobs.Spec{
		Kind:       jobs.Kind(req.Kind),
		Deployment: entry.Fingerprint,
		ThetasPi:   thetas,
		Grid:       k,
		Workers:    req.Workers,
		Version:    view.Version(),
	})
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrQueueFull):
		writeRetryable(w, http.StatusTooManyRequests, "job queue full")
		return
	case errors.Is(err, jobs.ErrClosed):
		// Shutting down is retryable too — against the restarted daemon
		// or another replica — so it carries Retry-After like every
		// other retryable 5xx.
		writeRetryable(w, http.StatusServiceUnavailable, "server shutting down")
		return
	default:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, jobBody(snap))
}

// writeJobLookupError maps the manager's lookup sentinels: collected
// results answer 410 Gone (the id existed; its retention TTL passed),
// unknown ids 404.
func writeJobLookupError(w http.ResponseWriter, id string, err error) {
	if errors.Is(err, jobs.ErrExpired) {
		writeError(w, http.StatusGone,
			fmt.Sprintf("job %s expired: its result passed the retention TTL", id))
		return
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("no job %s", id))
}

// handleJobGet polls a job's status, progress, and (when done) result.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.jobs.Get(id)
	if err != nil {
		writeJobLookupError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, jobBody(snap))
}

// handleJobCancel requests cancellation. Queued jobs cancel
// synchronously; a running job's body may still say "running" — poll
// until terminal. Cancelling a terminal job is an idempotent no-op that
// re-answers the terminal body.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.jobs.Cancel(id)
	if err != nil {
		writeJobLookupError(w, id, err)
		return
	}
	writeJSON(w, http.StatusOK, jobBody(snap))
}

// handleJobEvents streams a job's progress over Server-Sent Events: a
// "snapshot" event with the current body, then a "band" event per
// completed band (carrying that band's partial RegionStats) and "state"
// events for transitions, and a final "snapshot" when the job is
// terminal. Like the other observability endpoints it bypasses the
// admission gate — a stream is long-lived by design and must not pin a
// compute slot.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ch, stop, err := s.jobs.Subscribe(id)
	if err != nil {
		writeJobLookupError(w, id, err)
		return
	}
	defer stop()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, "snapshot", jobBody(snap))
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: re-read for the authoritative final body (the
				// closing event may have been dropped under backpressure).
				if final, err := s.jobs.Get(id); err == nil {
					writeSSE(w, "snapshot", jobBody(final))
					fl.Flush()
				}
				return
			}
			writeSSE(w, string(ev.Type), ev)
			fl.Flush()
		}
	}
}

// writeSSE writes one Server-Sent Event with a JSON payload.
func writeSSE(w io.Writer, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}
