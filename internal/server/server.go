// Package server implements fvcd's HTTP/JSON API: a long-running
// full-view-coverage query service over the repository's coverage
// kernel. A deployment (camera network) is registered once, its CSR
// spatial index is built and kept warm in an LRU cache
// (internal/depcache), and point queries and region surveys are then
// answered against the cached index through core.MultiChecker and the
// internal/sweep engine.
//
// # Routes
//
//	POST  /v1/deployments              register a camera network
//	GET   /v1/deployments/{id}         describe a registered deployment (live state + version)
//	PATCH /v1/deployments/{id}         mutate a deployment: reaim / remove / add cameras
//	POST  /v1/deployments/{id}/query   batch point full-view checks over a θ-list
//	POST  /v1/deployments/{id}/survey  region sweep (dense grid or k×k grid)
//	POST  /v1/jobs                     submit an async survey/sweep job
//	GET   /v1/jobs/{id}                poll job status, progress, result
//	DELETE /v1/jobs/{id}               cancel a job (idempotent)
//	GET   /v1/jobs/{id}/events         stream partial results over SSE
//	GET   /healthz                     liveness probe
//	GET   /readyz                      readiness: starting | ok | degraded
//	GET   /metrics                     Prometheus text metrics
//	GET   /debug/pprof/*               standard Go profiling endpoints
//
// # Mutability
//
// Deployments are mutable after registration: PATCH applies a batch of
// re-aims, removals, and additions to the cached spatial.MutableIndex,
// which absorbs the churn in a delta overlay and folds it into a fresh
// CSR base in the background once it outgrows Config.RebuildFraction
// of the base. Every mutation batch bumps the deployment version,
// echoed by every response, and queries and surveys evaluate against
// one pinned snapshot so a batch never straddles a concurrent patch.
// Mutations are journaled (persist-before-apply) when StateDir is set:
// a journal write failure refuses the patch with 503 + Retry-After and
// leaves the served state untouched.
//
// # Jobs
//
// Long-running surveys and θ-sweeps run asynchronously through
// internal/jobs: POST /v1/jobs answers 202 with a job id immediately,
// the compute proceeds band-by-band (one grid row at one θ) on a
// bounded worker pool, and each completed band is fsynced to a per-job
// journal under StateDir/jobs. A killed daemon restarted on the same
// state dir resumes incomplete jobs from their last journaled band and
// finishes them bit-identically to an uninterrupted run; terminal
// results are kept for Config.JobTTL and then garbage-collected
// (polling a collected id answers 410 Gone). Job-worker panics fail
// only their job; job-journal write failures degrade jobs to
// memory-only and surface on /readyz, mirroring the depjournal
// contract.
//
// # Resilience
//
// With Config.StateDir set, registrations are journaled durably
// (internal/depjournal): a crashed or killed daemon restarted on the
// same state dir answers queries for every previously registered id
// bit-identically, and journaled ids also survive LRU eviction (they
// are rebuilt lazily on next use). Handler panics are contained by
// middleware into structured 500s — the admission slot is released, a
// stack goes to the logger, fvcd_panics_total counts the event, and
// the daemon keeps serving. Per-route deadlines (Config.QueryTimeout,
// Config.SurveyTimeout) bound how long one request may hold a slot;
// expiry answers 504. GET /readyz distinguishes startup replay
// ("starting"), normal operation ("ok"), and a failing journal
// ("degraded": queries keep answering from memory, registrations 503).
// The failure paths are exercised deterministically through
// internal/faultinject by the chaos test suite.
//
// # Admission
//
// The /v1 routes pass an admission gate: at most MaxInFlight requests
// execute concurrently; excess requests queue for at most QueueTimeout
// and are then rejected with 429 and a Retry-After header. Health,
// metrics, and pprof bypass the gate so a saturated server can still be
// probed and profiled. Every admitted request's context is wired into
// the coverage kernels — a disconnecting client cancels its sweep
// mid-flight (reported as status 499 in the metrics).
//
// # Drain
//
// Serve/Shutdown wrap net/http's graceful termination: Shutdown stops
// accepting connections and waits for in-flight requests to finish, so
// a SIGTERM never truncates a half-answered query.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"fullview/internal/depcache"
	"fullview/internal/depjournal"
	"fullview/internal/faultinject"
	"fullview/internal/jobs"
	"fullview/internal/telemetry"
)

// StatusClientClosedRequest is the non-standard status recorded when a
// request's context is cancelled before the response is written (nginx
// convention).
const StatusClientClosedRequest = 499

// Config parameterises the service. The zero value is usable: every
// field falls back to the default documented on it.
type Config struct {
	// CacheSize is the number of deployments kept warm (default 16).
	CacheSize int
	// MaxInFlight bounds concurrently executing /v1 requests
	// (default 4×GOMAXPROCS).
	MaxInFlight int
	// QueueTimeout is how long an over-limit request may wait for
	// admission before being rejected with 429 (default 100ms).
	QueueTimeout time.Duration
	// SurveyWorkers is the worker count for region sweeps
	// (default GOMAXPROCS; requests may lower it per call, never raise).
	SurveyWorkers int
	// MaxBodyBytes caps request body size (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatchPoints caps the points of one query request
	// (default 100000).
	MaxBatchPoints int
	// MaxThetas caps the θ-list length of one query request
	// (default 64).
	MaxThetas int
	// MaxCameras caps the size of a registered deployment
	// (default 500000).
	MaxCameras int
	// QueryTimeout bounds the handler execution of register, inspect,
	// and query requests; an expired deadline answers 504 so a wedged
	// request cannot hold its admission slot forever (default 30s;
	// negative disables the deadline).
	QueryTimeout time.Duration
	// SurveyTimeout is the same bound for survey requests, which
	// legitimately run much longer (default 5m; negative disables).
	SurveyTimeout time.Duration
	// StateDir, when non-empty, makes registrations durable: every
	// accepted registration is journaled (append+fsync) under this
	// directory, and a restarted server replays the journal so
	// previously registered deployment ids keep answering.
	StateDir string
	// JournalCompactBytes is the deployment journal's compaction
	// threshold (default 4 MiB; negative disables compaction). Only
	// meaningful with StateDir.
	JournalCompactBytes int64
	// RebuildFraction is the overlay-to-base size ratio past which a
	// mutated deployment's index is folded into a fresh CSR base in the
	// background (0 selects spatial.DefaultRebuildFraction; negative
	// disables automatic rebuilds).
	RebuildFraction float64
	// JobQueue bounds each job kind's pending queue; a full queue
	// rejects submissions with 429 (default 64).
	JobQueue int
	// JobConcurrency is the number of job workers per kind (default 2).
	JobConcurrency int
	// JobTTL is how long terminal job results are retained for polling
	// before garbage collection (default 15m; negative retains forever).
	JobTTL time.Duration
	// JobThrottle pauses job workers after every completed band — an
	// ops/test pacing knob that makes mid-job crashes reproducible
	// (default 0, no pause).
	JobThrottle time.Duration
	// PeerURLs lists the base URLs of the OTHER replicas of an fvcd
	// cluster (empty means standalone). A clustered server mirrors
	// every journal append to its peers asynchronously, serves its
	// journal as a snapshot on GET /v1/internal/snapshot, and — when
	// its own journal file is missing or empty at startup — warms from
	// a peer snapshot before opening it. Requires StateDir.
	PeerURLs []string
	// AntiEntropyInterval is the gap between anti-entropy reconciliation
	// rounds, in which a clustered replica diffs its per-deployment
	// journal digests against each peer's GET /v1/internal/digest and
	// pulls any deployment it is missing or behind on. Zero (the
	// default) disables the periodic loop — repairs then run only when
	// driven explicitly (AntiEntropyRound). Only meaningful with
	// PeerURLs.
	AntiEntropyInterval time.Duration
	// Logger receives operational log lines; nil discards them.
	Logger *log.Logger
}

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.SurveyWorkers <= 0 {
		c.SurveyWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatchPoints <= 0 {
		c.MaxBatchPoints = 100_000
	}
	if c.MaxThetas <= 0 {
		c.MaxThetas = 64
	}
	if c.MaxCameras <= 0 {
		c.MaxCameras = 500_000
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.SurveyTimeout == 0 {
		c.SurveyTimeout = 5 * time.Minute
	}
	return c
}

// metrics bundles the pre-registered series the request path touches.
type metrics struct {
	reg             *telemetry.Registry
	queueDepth      *telemetry.Gauge
	inFlight        *telemetry.Gauge
	points          *telemetry.Counter
	surveyPoints    *telemetry.Counter
	pointCost       map[string]*telemetry.Histogram // ns/point, by source
	registered      *telemetry.Counter
	rebuilds        *telemetry.Counter
	panics          *telemetry.Counter
	journalFailures *telemetry.Counter
	latency         map[string]*telemetry.Histogram // per route
	requestHelp     string
}

// Server is the fvcd service: an http.Handler plus the graceful
// serve/drain lifecycle around it. Construct with New; a Server is safe
// for concurrent use.
type Server struct {
	cfg   Config
	cache *depcache.Cache
	m     *metrics
	mux   *http.ServeMux
	start time.Time

	// journal is the durable deployment registry (nil without StateDir);
	// ready is closed when the startup journal replay finishes.
	journal *depjournal.Journal
	ready   chan struct{}

	// jobs is the async job subsystem (always non-nil; journals under
	// StateDir/jobs when StateDir is set, memory-only otherwise).
	jobs *jobs.Manager

	// cluster is the journal-mirroring machinery (nil when standalone).
	cluster *clusterState

	stateMu    sync.Mutex
	journalErr error // last journal-write failure; nil when healthy
	warmErr    error // failed peer-snapshot warm at startup; sticky until restart

	mu sync.Mutex
	hs *http.Server

	// testHookAdmitted, when non-nil, runs after a request passes the
	// admission gate and before its handler starts. Tests use it to hold
	// requests in flight deterministically.
	testHookAdmitted func(route string, r *http.Request)
}

// New builds a Server from the configuration. With cfg.StateDir set it
// opens (or replays) the durable deployment journal; an unusable state
// dir is the only error path.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: depcache.New(cfg.CacheSize),
		start: time.Now(),
		ready: make(chan struct{}),
	}
	s.m = s.newMetrics()
	if len(cfg.PeerURLs) > 0 {
		if cfg.StateDir == "" {
			return nil, errors.New("server: cluster peers require StateDir (the mirror and snapshot paths journal)")
		}
		s.cluster = newClusterState(s)
	}
	if cfg.StateDir != "" {
		if err := s.openState(); err != nil {
			return nil, err
		}
	}
	if s.cluster != nil && s.journal != nil {
		s.newAntiEntropy()
	}
	if err := s.openJobs(); err != nil {
		return nil, err
	}
	s.mux = s.routes()
	// Cache warm-up from the journal runs in the background; /readyz
	// reports "starting" until it finishes. Queries for journaled ids
	// are correct throughout (lazy revive), just colder.
	go s.warmup()
	return s, nil
}

// newMetrics registers the service's metric families.
func (s *Server) newMetrics() *metrics {
	reg := telemetry.New()
	m := &metrics{
		reg:        reg,
		queueDepth: reg.Gauge("fvcd_queue_depth", "Requests waiting for admission."),
		inFlight:   reg.Gauge("fvcd_inflight", "Requests currently executing."),
		points: reg.Counter("fvcd_points_evaluated_total",
			"Sample points pushed through the coverage kernel."),
		surveyPoints: reg.Counter("fvcd_survey_points_total",
			"Sample points evaluated by region surveys (inline /survey requests and job bands)."),
		pointCost: make(map[string]*telemetry.Histogram),
		registered: reg.Counter("fvcd_deployments_registered_total",
			"Deployment registrations accepted (including cache hits)."),
		rebuilds: reg.Counter("fvcd_rebuilds_total",
			"Overlay-to-CSR index rebuilds installed across all deployments."),
		panics: reg.Counter("fvcd_panics_total",
			"Handler panics recovered into 500 responses."),
		journalFailures: reg.Counter("fvcd_journal_write_failures_total",
			"Deployment-journal writes that failed (registration answered 503)."),
		latency:     make(map[string]*telemetry.Histogram),
		requestHelp: "HTTP requests by route and status code.",
	}
	for _, route := range []string{"register", "inspect", "mutate", "query", "survey", "jobs"} {
		m.latency[route] = reg.Histogram("fvcd_request_duration_ns",
			"Request latency in nanoseconds by route.", nil, telemetry.L("route", route))
	}
	for _, source := range []string{"survey", "job"} {
		m.pointCost[source] = reg.Histogram("fvcd_band_ns_per_point",
			"Per-point kernel cost of one survey (or job band) in nanoseconds per point.",
			telemetry.PointCostBuckets, telemetry.L("source", source))
	}
	reg.CounterFunc("fvcd_depcache_hits_total",
		"Deployment-cache lookups served from cache.",
		func() int64 { return s.cache.Stats().Hits })
	reg.CounterFunc("fvcd_depcache_misses_total",
		"Deployment-cache lookups that built a spatial index.",
		func() int64 { return s.cache.Stats().Misses })
	reg.CounterFunc("fvcd_depcache_evictions_total",
		"Deployments evicted by the LRU size cap.",
		func() int64 { return s.cache.Stats().Evictions })
	reg.GaugeFunc("fvcd_depcache_entries", "Deployments currently cached.",
		func() float64 { return float64(s.cache.Stats().Len) })
	reg.GaugeFunc("fvcd_depcache_hit_ratio",
		"Fraction of deployment-cache lookups served from cache.",
		func() float64 { return s.cache.Stats().HitRatio() })
	reg.CounterFunc("fvcd_mutations_total",
		"Deployment mutation batches applied (PATCH requests that changed state).",
		func() int64 { return s.cache.Stats().Mutations })
	reg.GaugeFunc("fvcd_overlay_cameras",
		"Delta-overlay entries (removed + added cameras) awaiting an index rebuild, summed over cached deployments.",
		func() float64 { return float64(s.cache.OverlayCameras()) })
	return m
}

// requests bumps the per-route/per-code request counter.
func (m *metrics) requests(route string, code int) {
	m.reg.Counter("fvcd_requests_total", m.requestHelp,
		telemetry.L("route", route), telemetry.L("code", fmt.Sprintf("%d", code))).Inc()
}

// routes assembles the service mux. /v1 handlers run behind the
// admission gate; observability endpoints do not.
func (s *Server) routes() *http.ServeMux {
	adm := newAdmission(s.cfg.MaxInFlight, s.cfg.QueueTimeout, s.m.queueDepth)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/deployments", s.admitted(adm, "register", s.handleRegister))
	mux.HandleFunc("GET /v1/deployments/{id}", s.admitted(adm, "inspect", s.handleInspect))
	mux.HandleFunc("PATCH /v1/deployments/{id}", s.admitted(adm, "mutate", s.handleMutate))
	mux.HandleFunc("POST /v1/deployments/{id}/query", s.admitted(adm, "query", s.handleQuery))
	mux.HandleFunc("POST /v1/deployments/{id}/survey", s.admitted(adm, "survey", s.handleSurvey))
	mux.HandleFunc("POST /v1/jobs", s.admitted(adm, "jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.admitted(adm, "jobs", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.admitted(adm, "jobs", s.handleJobCancel))
	// The event stream is long-lived by design: it sits off the
	// admission gate (like the other observability endpoints) so an open
	// stream never pins a compute slot.
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)

	// The cluster-internal routes (snapshot shipping, journal mirror)
	// sit off the admission gate like the observability endpoints:
	// replica-to-replica traffic must not compete with client compute
	// for admission slots.
	if s.cluster != nil {
		mux.HandleFunc(snapshotRoute, s.handleSnapshot)
		mux.HandleFunc(mirrorRoute, s.handleMirror)
		mux.HandleFunc(digestRoute, s.handleDigest)
	}

	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.m.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// admitted wraps a /v1 handler with the admission gate, body cap,
// per-route deadline, panic containment, request metrics, and latency
// recording.
func (s *Server) admitted(adm *admission, route string, h http.HandlerFunc) http.HandlerFunc {
	timeout := s.cfg.QueryTimeout
	if route == "survey" {
		timeout = s.cfg.SurveyTimeout
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		if err := adm.acquire(r.Context()); err != nil {
			code := http.StatusTooManyRequests
			msg := "server saturated: admission queue timed out"
			if !errors.Is(err, errSaturated) {
				code = StatusClientClosedRequest
				msg = "request cancelled while queued"
				writeError(w, code, msg)
			} else {
				writeRetryable(w, code, msg)
			}
			s.m.requests(route, code)
			return
		}
		defer adm.release()
		s.m.inFlight.Inc()
		defer s.m.inFlight.Dec()
		if s.testHookAdmitted != nil {
			s.testHookAdmitted(route, r)
		}

		// The per-route deadline bounds how long a request may hold its
		// admission slot: the derived context is wired into the coverage
		// kernels, which abort within a few hundred points of expiry and
		// answer 504.
		if timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		sr := &statusRecorder{ResponseWriter: w}
		s.serveRecovering(route, sr, r, h)
		code := sr.code
		if code == 0 {
			code = http.StatusOK
		}
		s.m.requests(route, code)
		s.m.latency[route].ObserveSince(t0)
	}
}

// serveRecovering invokes h with panic containment: a panicking handler
// becomes a structured 500 (stack to the logger, fvcd_panics_total
// bumped) instead of a killed connection, and — because the admission
// defers in admitted unwind normally — the request slot is always
// released. The non-panicking path adds zero allocations (pinned by
// TestPanicRecoveryZeroAlloc). http.ErrAbortHandler is re-panicked,
// preserving net/http's deliberate-abort convention.
func (s *Server) serveRecovering(route string, w *statusRecorder, r *http.Request, h http.HandlerFunc) {
	defer s.recoverToError(route, w)
	if err := faultinject.Fire(faultinject.Handler); err != nil {
		writeError(w, http.StatusInternalServerError, "injected handler fault: "+err.Error())
		return
	}
	h(w, r)
}

// recoverToError is the deferred half of serveRecovering.
func (s *Server) recoverToError(route string, w *statusRecorder) {
	p := recover()
	if p == nil {
		return
	}
	if p == http.ErrAbortHandler {
		panic(p)
	}
	buf := make([]byte, 8<<10)
	buf = buf[:runtime.Stack(buf, false)]
	s.logf("panic in %s handler (recovered): %v\n%s", route, p, buf)
	s.m.panics.Inc()
	if w.code == 0 {
		writeError(w, http.StatusInternalServerError,
			fmt.Sprintf("internal error: handler panicked: %v", p))
	}
}

// Handler returns the service's root handler, for embedding in tests or
// a custom http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry, so embedders can add their own
// series next to the service's.
func (s *Server) Registry() *telemetry.Registry { return s.m.reg }

// Cache returns the deployment cache (read its Stats for tests and
// embedders; the server owns mutation).
func (s *Server) Cache() *depcache.Cache { return s.cache }

// Serve accepts connections on ln until Shutdown is called or the
// listener fails. A graceful shutdown returns nil, mirroring the
// convention that drain is a success, not an error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.hs == nil {
		s.hs = &http.Server{Handler: s.mux}
	}
	hs := s.hs
	s.mu.Unlock()
	err := hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// SetTimeouts configures the read/write timeouts of the underlying
// http.Server. Must be called before Serve. A zero value disables the
// respective timeout (surveys of large grids can legitimately take
// longer than any fixed write timeout, so none is imposed by default).
func (s *Server) SetTimeouts(read, write time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hs == nil {
		s.hs = &http.Server{Handler: s.mux}
	}
	s.hs.ReadTimeout = read
	s.hs.WriteTimeout = write
}

// Shutdown gracefully drains the server: no new connections are
// accepted, in-flight requests run to completion (bounded by ctx), and
// the corresponding Serve call returns nil. Calling Shutdown before
// Serve is safe and makes a later Serve return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.hs == nil {
		s.hs = &http.Server{Handler: s.mux}
	}
	hs := s.hs
	s.mu.Unlock()
	err := hs.Shutdown(ctx)
	// Stop the anti-entropy loop first — a reconciliation round applies
	// journal writes, and the journal is about to close.
	if s.cluster != nil && s.cluster.antientropy != nil {
		s.cluster.antientropy.Stop()
	}
	// Stop the mirror workers after the HTTP drain: handlers enqueue
	// mirror batches, so none can arrive once the drain completes.
	// Batches still queued are abandoned — the peers heal from a
	// snapshot, and a drain must not block on an unreachable peer.
	if s.cluster != nil {
		s.cluster.close()
	}
	// Stop the job workers after the HTTP drain (submissions may still
	// arrive during it). Running jobs get no terminal record — a
	// shutdown is not a cancellation — so a restart on the same state
	// dir resumes them from their last journaled band.
	if s.jobs != nil {
		s.jobs.Close()
	}
	// Close the journal only after the drain: in-flight registrations
	// may still append. Close is idempotent, and a crash that skips it
	// loses nothing — every append was already fsynced.
	if s.journal != nil {
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// logf writes one operational log line when a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

// statusRecorder captures the status code written by a handler so the
// middleware can label its metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}
