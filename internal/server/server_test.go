package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// testProfile is the heterogeneous profile every test deployment uses.
const testProfile = "0.3:0.2:0.4,0.7:0.1:0.5"

// mustNew builds a Server, failing the test on a config error.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// testNetwork deploys the reference heterogeneous network.
func testNetwork(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	profile, err := sensor.ParseProfile(testProfile)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// camerasBody renders a network as an explicit-camera registration.
func camerasBody(t *testing.T, net *sensor.Network) []byte {
	t.Helper()
	cams := make([]cameraJSON, net.Len())
	for i := 0; i < net.Len(); i++ {
		c := net.Camera(i)
		cams[i] = cameraJSON{
			X: c.Pos.X, Y: c.Pos.Y, Orient: c.Orient,
			Radius: c.Radius, Aperture: c.Aperture, Group: c.Group,
		}
	}
	body, err := json.Marshal(registerRequest{Cameras: cams})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// post sends a JSON POST and decodes the JSON response into out,
// returning the status code.
func post(t *testing.T, client *http.Client, url string, body []byte, out any) int {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// TestRegisterQuerySurveyRoundTrip drives the full service life cycle
// over real HTTP and checks the query verdicts bit-identical against
// core.MultiChecker run in-process on the same network.
func TestRegisterQuerySurveyRoundTrip(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	net := testNetwork(t, 200, 7)

	// Register.
	var reg registerResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments", camerasBody(t, net), &reg); code != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", code)
	}
	if reg.Cached || reg.Cameras != 200 {
		t.Fatalf("register response = %+v", reg)
	}

	// Query a point batch across a θ-list.
	thetasPi := []float64{0.2, 0.25, 0.5}
	points := []pointJSON{
		{0.5, 0.5}, {0.1, 0.9}, {0.25, 0.75}, {0.99, 0.01}, {0.333, 0.667},
	}
	body, _ := json.Marshal(queryRequest{ThetasPi: thetasPi, Points: points})
	var q queryResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+reg.ID+"/query", body, &q); code != http.StatusOK {
		t.Fatalf("query status = %d, want 200", code)
	}
	if len(q.Results) != len(points) {
		t.Fatalf("got %d results, want %d", len(q.Results), len(points))
	}

	// In-process truth on the same network.
	thetas := make([]float64, len(thetasPi))
	for i, tp := range thetasPi {
		thetas[i] = tp * math.Pi
	}
	mc, err := core.NewMultiChecker(net, thetas)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		want := mc.Evaluate(geom.V(p.X, p.Y))
		got := q.Results[i]
		if got.NumCovering != want.NumCovering {
			t.Errorf("point %d: NumCovering = %d, want %d", i, got.NumCovering, want.NumCovering)
		}
		if got.MaxGap != want.MaxGap {
			t.Errorf("point %d: MaxGap = %v, want bit-identical %v", i, got.MaxGap, want.MaxGap)
		}
		for j, v := range want.PerTheta {
			g := got.PerTheta[j]
			if g.FullView != v.FullView || g.Necessary != v.Necessary || g.Sufficient != v.Sufficient {
				t.Errorf("point %d θ[%d]: got %+v, want %+v", i, j, g, v)
			}
		}
	}

	// Survey a 32×32 grid and compare against the sequential library sweep.
	body, _ = json.Marshal(surveyRequest{ThetaPi: 0.25, Grid: 32})
	var sv surveyResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+reg.ID+"/survey", body, &sv); code != http.StatusOK {
		t.Fatalf("survey status = %d, want 200", code)
	}
	checker, err := core.NewChecker(net, 0.25*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := deploy.GridPoints(net.Torus(), 32)
	if err != nil {
		t.Fatal(err)
	}
	want := checker.SurveyRegion(grid)
	if sv.Points != want.Points || sv.FullView != want.FullView ||
		sv.Necessary != want.Necessary || sv.Sufficient != want.Sufficient ||
		sv.MinCovering != want.MinCovering || sv.MeanCovering != want.MeanCovering {
		t.Errorf("survey = %+v, want stats %+v", sv, want)
	}
	if sv.FullViewFraction != want.FullViewFraction() {
		t.Errorf("FullViewFraction = %v, want %v", sv.FullViewFraction, want.FullViewFraction())
	}

	// Re-registering the identical network must be a cache hit with the
	// same id, visible in /metrics.
	var reg2 registerResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments", camerasBody(t, net), &reg2); code != http.StatusOK {
		t.Fatalf("re-register status = %d, want 200", code)
	}
	if !reg2.Cached || reg2.ID != reg.ID {
		t.Fatalf("re-register = %+v, want cached hit on %s", reg2, reg.ID)
	}
	metrics := getBody(t, ts.Client(), ts.URL+"/metrics")
	// One miss (first registration built the index) and three hits: the
	// query and survey lookups plus the second registration.
	for _, want := range []string{
		"fvcd_depcache_hits_total 3",
		"fvcd_depcache_misses_total 1",
		"fvcd_points_evaluated_total",
		`fvcd_requests_total{code="200",route="query"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Inspect and healthz.
	resp, err := ts.Client().Get(ts.URL + "/v1/deployments/" + reg.ID)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect: %v status %v", err, resp.StatusCode)
	}
	resp.Body.Close()
	if !strings.Contains(getBody(t, ts.Client(), ts.URL+"/healthz"), `"status":"ok"`) {
		t.Error("healthz not ok")
	}
}

func getBody(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRegisterRecipe checks the profile+seed registration form: the
// deterministic recipe lands on the same fingerprint both times.
func TestRegisterRecipe(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(registerRequest{Profile: testProfile, N: 120, Seed: 5})
	var first, second registerResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments", body, &first); code != http.StatusCreated {
		t.Fatalf("register status = %d, want 201", code)
	}
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments", body, &second); code != http.StatusOK {
		t.Fatalf("re-register status = %d, want 200", code)
	}
	if first.ID != second.ID || !second.Cached {
		t.Fatalf("recipe ids %s vs %s (cached=%v), want identical cache hit", first.ID, second.ID, second.Cached)
	}

	// The recipe must equal the library deployment with the same seed.
	net := testNetwork(t, 120, 5)
	q, _ := json.Marshal(queryRequest{ThetasPi: []float64{0.25}, Points: []pointJSON{{0.4, 0.6}}})
	var resp queryResponse
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+first.ID+"/query", q, &resp); code != http.StatusOK {
		t.Fatalf("query status = %d", code)
	}
	mc, err := core.NewMultiChecker(net, []float64{0.25 * math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	want := mc.Evaluate(geom.V(0.4, 0.6))
	if resp.Results[0].NumCovering != want.NumCovering || resp.Results[0].MaxGap != want.MaxGap {
		t.Errorf("recipe deployment differs from library deployment: got %+v, want %+v",
			resp.Results[0], want)
	}
}

// TestErrorResponses covers the 4xx surface: malformed JSON, unknown
// fields, invalid parameters, and unknown deployment ids.
func TestErrorResponses(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	reg := func() string {
		var r registerResponse
		post(t, client, ts.URL+"/v1/deployments", camerasBody(t, testNetwork(t, 30, 1)), &r)
		return r.ID
	}()

	cases := []struct {
		name, url, body string
		want            int
	}{
		{"malformed JSON", "/v1/deployments", `{"cameras": [`, http.StatusBadRequest},
		{"unknown field", "/v1/deployments", `{"camerass": []}`, http.StatusBadRequest},
		{"empty registration", "/v1/deployments", `{}`, http.StatusBadRequest},
		{"both forms", "/v1/deployments",
			`{"cameras":[{"x":0,"y":0,"orient":0,"radius":0.1,"aperture":1}],"profile":"1:0.1:0.5","n":5}`,
			http.StatusBadRequest},
		{"bad camera", "/v1/deployments",
			`{"cameras":[{"x":0,"y":0,"orient":0,"radius":-1,"aperture":1}]}`, http.StatusBadRequest},
		{"unknown deployment query", "/v1/deployments/deadbeef/query",
			`{"thetasPi":[0.25],"points":[{"x":0.5,"y":0.5}]}`, http.StatusNotFound},
		{"unknown deployment survey", "/v1/deployments/deadbeef/survey",
			`{"thetaPi":0.25}`, http.StatusNotFound},
		{"query without thetas", "/v1/deployments/" + reg + "/query",
			`{"thetasPi":[],"points":[{"x":0.5,"y":0.5}]}`, http.StatusBadRequest},
		{"query without points", "/v1/deployments/" + reg + "/query",
			`{"thetasPi":[0.25],"points":[]}`, http.StatusBadRequest},
		{"theta out of range", "/v1/deployments/" + reg + "/query",
			`{"thetasPi":[1.5],"points":[{"x":0.5,"y":0.5}]}`, http.StatusBadRequest},
		{"survey theta out of range", "/v1/deployments/" + reg + "/survey",
			`{"thetaPi":0}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var e errorResponse
		if code := post(t, client, ts.URL+tc.url, []byte(tc.body), &e); code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, code, tc.want)
		} else if e.Error == "" {
			t.Errorf("%s: empty error body", tc.name)
		}
	}
}

// TestBatchCaps checks the request-size guards.
func TestBatchCaps(t *testing.T) {
	srv := mustNew(t, Config{MaxBatchPoints: 3, MaxThetas: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var reg registerResponse
	post(t, ts.Client(), ts.URL+"/v1/deployments", camerasBody(t, testNetwork(t, 30, 1)), &reg)

	tooManyPoints, _ := json.Marshal(queryRequest{
		ThetasPi: []float64{0.25},
		Points:   []pointJSON{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
	})
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+reg.ID+"/query", tooManyPoints, nil); code != http.StatusBadRequest {
		t.Errorf("over-cap points: status %d, want 400", code)
	}
	tooManyThetas, _ := json.Marshal(queryRequest{
		ThetasPi: []float64{0.2, 0.25, 0.5},
		Points:   []pointJSON{{0, 0}},
	})
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+reg.ID+"/query", tooManyThetas, nil); code != http.StatusBadRequest {
		t.Errorf("over-cap thetas: status %d, want 400", code)
	}
	// A hostile grid side must be rejected by arithmetic before the k×k
	// point slice is allocated — {"grid":100000} is ~160 GB of points.
	hugeGrid, _ := json.Marshal(surveyRequest{ThetaPi: 0.25, Grid: 100_000})
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+reg.ID+"/survey", hugeGrid, nil); code != http.StatusBadRequest {
		t.Errorf("over-cap survey grid: status %d, want 400", code)
	}
}

// TestAdmissionSaturation fills the single admission slot with a
// blocked request and asserts the next one is rejected with 429 after
// the queue timeout.
func TestAdmissionSaturation(t *testing.T) {
	srv := mustNew(t, Config{MaxInFlight: 1, QueueTimeout: 5 * time.Millisecond})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookAdmitted = func(route string, _ *http.Request) {
		if route == "register" {
			close(entered)
			<-release
		}
	}

	first := make(chan int)
	go func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/deployments", bytes.NewReader(camerasBody(t, testNetwork(t, 20, 1))))
		srv.Handler().ServeHTTP(rec, req)
		first <- rec.Code
	}()
	<-entered

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/deployments/xyz/query", strings.NewReader(`{}`))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	close(release)
	if code := <-first; code != http.StatusCreated {
		t.Fatalf("blocked request finished with %d, want 201", code)
	}

	// The rejection must be visible in the metrics.
	mrec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), `fvcd_requests_total{code="429",route="query"} 1`) {
		t.Errorf("metrics missing the 429:\n%s", mrec.Body.String())
	}
}

// TestSurveyCancellation cancels a survey request's context right after
// admission and asserts the sweep aborts with status 499 instead of
// completing.
func TestSurveyCancellation(t *testing.T) {
	srv := mustNew(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	srv.testHookAdmitted = func(route string, _ *http.Request) {
		if route == "survey" {
			cancel() // the client walks away while the request is in flight
		}
	}

	var reg registerResponse
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/deployments", bytes.NewReader(camerasBody(t, testNetwork(t, 100, 3))))
	srv.Handler().ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &reg); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/v1/deployments/"+reg.ID+"/survey",
		strings.NewReader(`{"thetaPi":0.25,"grid":100}`)).WithContext(ctx)
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("cancelled survey: status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}

	mrec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), `fvcd_requests_total{code="499",route="survey"} 1`) {
		t.Errorf("metrics missing the 499:\n%s", mrec.Body.String())
	}
}

// TestGracefulDrain starts a real listener, parks a request in flight,
// calls Shutdown, and asserts the in-flight request completes with 200
// while Serve and Shutdown both return cleanly.
func TestGracefulDrain(t *testing.T) {
	srv := mustNew(t, Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.testHookAdmitted = func(route string, _ *http.Request) {
		if route == "register" {
			close(entered)
			<-release
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/deployments", "application/json",
			bytes.NewReader(camerasBody(t, testNetwork(t, 20, 1))))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Give Shutdown a moment to close the listener, then prove new
	// connections are refused while the old request still drains.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get(base + "/healthz"); err != nil {
			break // listener closed: drain has begun
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting long after Shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(release)
	if code := <-inflight; code != http.StatusCreated {
		t.Fatalf("in-flight request finished with %d, want 201 (drain must not cut it off)", code)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
	}
}

// TestConcurrentQueries hammers one server from many goroutines —
// mixed registrations and queries — mainly as race-detector fodder for
// the cache, metrics, and admission paths.
func TestConcurrentQueries(t *testing.T) {
	srv := mustNew(t, Config{CacheSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	nets := []*sensor.Network{testNetwork(t, 40, 1), testNetwork(t, 40, 2), testNetwork(t, 40, 3)}
	bodies := make([][]byte, len(nets))
	ids := make([]string, len(nets))
	for i, n := range nets {
		bodies[i] = camerasBody(t, n)
		var r registerResponse
		post(t, ts.Client(), ts.URL+"/v1/deployments", bodies[i], &r)
		ids[i] = r.ID
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				k := (w + i) % len(nets)
				// Re-register (hit or rebuild after eviction)…
				if code := post(t, ts.Client(), ts.URL+"/v1/deployments", bodies[k], nil); code != http.StatusOK && code != http.StatusCreated {
					t.Errorf("re-register: status %d", code)
					return
				}
				// …then query it.
				q, _ := json.Marshal(queryRequest{
					ThetasPi: []float64{0.25, 0.5},
					Points:   []pointJSON{{float64(i) / 25, float64(w) / 8}},
				})
				code := post(t, ts.Client(), ts.URL+"/v1/deployments/"+ids[k]+"/query", q, nil)
				if code != http.StatusOK && code != http.StatusNotFound { // NotFound: evicted by a peer
					t.Errorf("query: status %d", code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if srv.Cache().Len() > 2 {
		t.Fatalf("cache over cap: %d", srv.Cache().Len())
	}
}

// TestMaxBodyBytes checks the request-body cap.
func TestMaxBodyBytes(t *testing.T) {
	srv := mustNew(t, Config{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	big := fmt.Sprintf(`{"profile":%q,"n":10,"seed":1,"deploy":"uniform","torus":1}`, testProfile)
	if code := post(t, ts.Client(), ts.URL+"/v1/deployments", []byte(big), nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", code)
	}
}
