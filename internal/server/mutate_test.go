package server

// Mutation-pipeline suite: drives PATCH /v1/deployments/{id} over the
// handler and pins the contracts the overlay refactor introduced — a
// patched deployment answers queries bit-identically to a fresh
// registration of the final camera list, validation failures leave the
// served state untouched, a journal write failure turns the patch into
// a 503 with the jittered Retry-After and applies nothing, and a
// restart on the same state dir replays the mutation journal to the
// same verdicts and version.

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"fullview/internal/faultinject"
	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// patchBody marshals a patchRequest.
func patchBody(t *testing.T, req patchRequest) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// inspect fetches a deployment's live description.
func inspect(t *testing.T, h http.Handler, id string) inspectResponse {
	t.Helper()
	rec := do(t, h, "GET", "/v1/deployments/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("inspect %s: %d %s", id, rec.Code, rec.Body.String())
	}
	var out inspectResponse
	decode(t, rec, &out)
	return out
}

// TestPatchQueryAgreesWithFreshRegistration is the service-level leg of
// the equivalence keystone: after a reaim+remove+add patch, queries
// against the patched deployment must return the exact per-point
// results a from-scratch registration of the final camera list returns.
func TestPatchQueryAgreesWithFreshRegistration(t *testing.T) {
	srv := mustNew(t, Config{})
	h := srv.Handler()
	net := testNetwork(t, 40, 5)

	var reg registerResponse
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, net))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)
	if reg.Version != 0 {
		t.Fatalf("fresh registration reports version %d, want 0", reg.Version)
	}

	added := cameraJSON{X: 0.62, Y: 0.38, Orient: -1.1, Radius: 0.17, Aperture: 1.3}
	patch := patchRequest{
		Reaim:  []reaimJSON{{Index: 3, Orient: 1.2}},
		Remove: []int{10, 2},
		Add:    []cameraJSON{added},
	}
	rec = do(t, h, "PATCH", "/v1/deployments/"+reg.ID, patchBody(t, patch))
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d %s", rec.Code, rec.Body.String())
	}
	var pr patchResponse
	decode(t, rec, &pr)
	// One journal record (and one version bump) per non-empty group.
	if pr.Version != 3 || pr.Cameras != net.Len()-2+1 ||
		pr.Reaimed != 1 || pr.Removed != 2 || pr.Added != 1 {
		t.Fatalf("patch response = %+v", pr)
	}
	if pr.Overlay == 0 {
		t.Fatal("patch left no overlay; the test would not exercise the overlay path")
	}

	ins := inspect(t, h, reg.ID)
	if ins.Version != pr.Version || ins.Cameras != pr.Cameras || ins.Overlay != pr.Overlay {
		t.Fatalf("inspect %+v disagrees with patch response %+v", ins, pr)
	}

	// Oracle: the same mutation applied to a plain camera slice, then
	// registered as its own deployment.
	cams := make([]sensor.Camera, net.Len())
	for i := range cams {
		cams[i] = net.Camera(i)
	}
	cams[3].Orient = 1.2
	cams = append(cams[:10], cams[11:]...) // remove 10 then 2, descending
	cams = append(cams[:2], cams[3:]...)
	oracle, err := sensor.NewNetwork(net.Torus(), append(cams, sensor.Camera{
		Pos: geom.V(added.X, added.Y), Orient: added.Orient,
		Radius: added.Radius, Aperture: added.Aperture,
	}))
	if err != nil {
		t.Fatal(err)
	}
	var reg2 registerResponse
	rec = do(t, h, "POST", "/v1/deployments", camerasBody(t, oracle))
	if rec.Code != http.StatusCreated {
		t.Fatalf("oracle register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg2)

	q := []byte(`{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9},{"x":0.33,"y":0.81},{"x":0.92,"y":0.04}]}`)
	var got, want queryResponse
	decode(t, do(t, h, "POST", "/v1/deployments/"+reg.ID+"/query", q), &got)
	decode(t, do(t, h, "POST", "/v1/deployments/"+reg2.ID+"/query", q), &want)
	if got.Version != pr.Version {
		t.Fatalf("query ran against version %d, want %d", got.Version, pr.Version)
	}
	gb, _ := json.Marshal(got.Results)
	wb, _ := json.Marshal(want.Results)
	if !bytes.Equal(gb, wb) {
		t.Errorf("patched deployment diverges from fresh registration:\n got: %s\nwant: %s", gb, wb)
	}
}

// TestPatchValidation pins the all-or-nothing 400 contract: every
// malformed patch is refused with a 400 (404 for unknown ids) and the
// deployment's version and camera count never move.
func TestPatchValidation(t *testing.T) {
	srv := mustNew(t, Config{MaxCameras: 12})
	h := srv.Handler()

	var reg registerResponse
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 10, 3)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)

	bad := []struct {
		name string
		body string
		code int
	}{
		{"empty patch", `{}`, http.StatusBadRequest},
		{"reaim out of range", `{"reaim":[{"index":10,"orient":1}]}`, http.StatusBadRequest},
		{"reaim negative", `{"reaim":[{"index":-1,"orient":1}]}`, http.StatusBadRequest},
		{"remove duplicate", `{"remove":[1,1]}`, http.StatusBadRequest},
		{"remove out of range", `{"remove":[10]}`, http.StatusBadRequest},
		{"invalid camera", `{"add":[{"x":0.5,"y":0.5,"radius":-1,"aperture":1}]}`, http.StatusBadRequest},
		{"over camera cap", `{"add":[{"x":0.1,"y":0.1,"radius":0.1,"aperture":1},{"x":0.2,"y":0.2,"radius":0.1,"aperture":1},{"x":0.3,"y":0.3,"radius":0.1,"aperture":1}]}`, http.StatusBadRequest},
		{"unknown field", `{"remove":[1],"explode":true}`, http.StatusBadRequest},
	}
	for _, tc := range bad {
		rec := do(t, h, "PATCH", "/v1/deployments/"+reg.ID, []byte(tc.body))
		if rec.Code != tc.code {
			t.Errorf("%s: answered %d, want %d: %s", tc.name, rec.Code, tc.code, rec.Body.String())
		}
	}
	if rec := do(t, h, "PATCH", "/v1/deployments/nope", []byte(`{"remove":[0]}`)); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id answered %d, want 404: %s", rec.Code, rec.Body.String())
	}

	ins := inspect(t, h, reg.ID)
	if ins.Version != 0 || ins.Cameras != 10 || ins.Overlay != 0 {
		t.Fatalf("refused patches moved state: %+v", ins)
	}
}

// TestPatchNotDurable503 wounds the journal during a patch: the patch
// must answer 503 with the jittered Retry-After header, apply nothing,
// and flip /readyz to degraded; after the fault clears the identical
// patch succeeds.
func TestPatchNotDurable503(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNew(t, Config{StateDir: t.TempDir()})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)

	var reg registerResponse
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 20, 7)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)

	body := patchBody(t, patchRequest{Remove: []int{4}})
	remove := faultinject.Set(faultinject.JournalWrite, faultinject.Error(errors.New("disk on fire")))
	rec = do(t, h, "PATCH", "/v1/deployments/"+reg.ID, body)
	remove()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("patch with failing journal answered %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var e errorResponse
	decode(t, rec, &e)
	if !strings.Contains(e.Error, "not durable") {
		t.Fatalf("503 body %q does not explain durability", e.Error)
	}
	ra := rec.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("journal-503 carries no Retry-After header")
	}
	v, err := strconv.ParseFloat(ra, 64)
	if err != nil || v < 0.8 || v > 1.2 {
		t.Fatalf("Retry-After %q outside the 1s ±20%% jitter contract", ra)
	}

	// Persist-before-apply: the failed patch must not have touched the
	// served state.
	if ins := inspect(t, h, reg.ID); ins.Version != 0 || ins.Cameras != 20 {
		t.Fatalf("failed patch moved state: %+v", ins)
	}
	var ready struct {
		Status string `json:"status"`
	}
	decode(t, do(t, h, "GET", "/readyz", nil), &ready)
	if ready.Status != ReadyDegraded {
		t.Fatalf("readyz = %q after journal failure, want %q", ready.Status, ReadyDegraded)
	}

	rec = do(t, h, "PATCH", "/v1/deployments/"+reg.ID, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("patch after healing answered %d: %s", rec.Code, rec.Body.String())
	}
	var pr patchResponse
	decode(t, rec, &pr)
	if pr.Version != 1 || pr.Cameras != 19 {
		t.Fatalf("healed patch response = %+v", pr)
	}
	waitReadyz(t, h, ReadyOK)
}

// TestPatchRestartBitIdentical is the kill -9 leg of the keystone: a
// server registers and patches a deployment, answers a query, and is
// abandoned with nothing but the journal's append-time fsyncs; a second
// server on the same state dir must replay the mutation records to the
// same version and answer the query byte-for-byte — and a
// re-registration of the ORIGINAL camera list must report the mutated
// live state, not resurrect the base.
func TestPatchRestartBitIdentical(t *testing.T) {
	state := t.TempDir()
	net := testNetwork(t, 40, 9)
	q := []byte(`{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9}]}`)
	patch := patchBody(t, patchRequest{
		Reaim:  []reaimJSON{{Index: 0, Orient: 2.4}},
		Remove: []int{17, 6, 33},
		Add:    []cameraJSON{{X: 0.41, Y: 0.27, Orient: 0.3, Radius: 0.22, Aperture: 0.9}},
	})

	srv1 := mustNew(t, Config{StateDir: state})
	h1 := srv1.Handler()
	waitReadyz(t, h1, ReadyOK)
	var reg registerResponse
	rec := do(t, h1, "POST", "/v1/deployments", camerasBody(t, net))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)
	rec = do(t, h1, "PATCH", "/v1/deployments/"+reg.ID, patch)
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d %s", rec.Code, rec.Body.String())
	}
	var pr patchResponse
	decode(t, rec, &pr)
	want := do(t, h1, "POST", "/v1/deployments/"+reg.ID+"/query", q).Body.Bytes()
	// No Shutdown — only the per-append fsyncs survive a kill -9.

	srv2 := mustNew(t, Config{StateDir: state})
	h2 := srv2.Handler()
	waitReadyz(t, h2, ReadyOK)
	got := do(t, h2, "POST", "/v1/deployments/"+reg.ID+"/query", q)
	if got.Code != http.StatusOK {
		t.Fatalf("restarted server answered %d for patched id: %s", got.Code, got.Body.String())
	}
	if !bytes.Equal(got.Body.Bytes(), want) {
		t.Errorf("patched query diverged across restart:\n pre: %s\npost: %s", want, got.Body.Bytes())
	}
	if ins := inspect(t, h2, reg.ID); ins.Version != pr.Version || ins.Cameras != pr.Cameras {
		t.Fatalf("restart replayed to %+v, want version %d cameras %d", ins, pr.Version, pr.Cameras)
	}

	// Re-registering the base camera list must answer with the LIVE
	// (mutated) deployment, not rebuild the pre-patch index.
	rec = do(t, h2, "POST", "/v1/deployments", camerasBody(t, net))
	if rec.Code != http.StatusOK && rec.Code != http.StatusCreated {
		t.Fatalf("re-register: %d %s", rec.Code, rec.Body.String())
	}
	var reg2 registerResponse
	decode(t, rec, &reg2)
	if reg2.ID != reg.ID || reg2.Version != pr.Version || reg2.Cameras != pr.Cameras {
		t.Fatalf("re-registration resurrected stale state: %+v, want version %d cameras %d",
			reg2, pr.Version, pr.Cameras)
	}
	if err := srv2.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestPatchMetrics checks the churn telemetry: mutations, rebuilds, and
// the overlay gauge all move through the PATCH path.
func TestPatchMetrics(t *testing.T) {
	srv := mustNew(t, Config{RebuildFraction: -1})
	h := srv.Handler()

	var reg registerResponse
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 20, 11)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)
	rec = do(t, h, "PATCH", "/v1/deployments/"+reg.ID,
		patchBody(t, patchRequest{Add: []cameraJSON{{X: 0.5, Y: 0.5, Radius: 0.1, Aperture: 1}}}))
	if rec.Code != http.StatusOK {
		t.Fatalf("patch: %d %s", rec.Code, rec.Body.String())
	}
	if line := metricLine(t, h, "fvcd_mutations_total"); line != "fvcd_mutations_total 1" {
		t.Errorf("mutation counter = %q, want fvcd_mutations_total 1", line)
	}
	if line := metricLine(t, h, "fvcd_overlay_cameras"); line != "fvcd_overlay_cameras 1" {
		t.Errorf("overlay gauge = %q, want fvcd_overlay_cameras 1", line)
	}
	if line := metricLine(t, h, "fvcd_rebuilds_total"); line != "fvcd_rebuilds_total 0" {
		t.Errorf("rebuild counter = %q, want fvcd_rebuilds_total 0 with rebuilds disabled", line)
	}
}
