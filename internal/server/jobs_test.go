package server

// Job-API suite: drives the async job endpoints over the handler and
// asserts the crash-safety contract end to end — a job's result is
// bit-identical to the synchronous library sweep, a kill-and-restart
// on the same state dir resumes an interrupted job from its last
// journaled band, cancellation and TTL expiry behave per spec, and the
// chaos faults (band panic, job-journal write failure, replay failure)
// degrade exactly as documented while the daemon keeps serving.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/faultinject"
	"fullview/internal/geom"
	"fullview/internal/jobs"
	"fullview/internal/sensor"
)

// mustNewStopped builds a Server and schedules its Shutdown, so job
// workers never outlive the test.
func mustNewStopped(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := mustNew(t, cfg)
	t.Cleanup(func() { _ = srv.Shutdown(context.Background()) })
	return srv
}

// registerNet registers a network and returns its deployment id.
func registerNet(t *testing.T, h http.Handler, net *sensor.Network) string {
	t.Helper()
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, net))
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}
	var out registerResponse
	decode(t, rec, &out)
	return out.ID
}

// submitJob posts a job request and returns the accepted body.
func submitJob(t *testing.T, h http.Handler, req jobSubmitRequest) jobResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, h, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", rec.Code, rec.Body.String())
	}
	var out jobResponse
	decode(t, rec, &out)
	if out.ID == "" || out.State == "" {
		t.Fatalf("submit body missing id/state: %s", rec.Body.String())
	}
	return out
}

// getJob polls one job id, failing on a non-200.
func getJob(t *testing.T, h http.Handler, id string) jobResponse {
	t.Helper()
	rec := do(t, h, "GET", "/v1/jobs/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("get job %s: status %d: %s", id, rec.Code, rec.Body.String())
	}
	var out jobResponse
	decode(t, rec, &out)
	return out
}

// pollJob polls until the job reaches a terminal state.
func pollJob(t *testing.T, h http.Handler, id string) jobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := getJob(t, h, id)
		if jobs.State(body.State).Terminal() {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q (%d/%d bands)", id, body.State, body.BandsDone, body.Bands)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// pollJobUntil polls until cond holds on the job body.
func pollJobUntil(t *testing.T, h http.Handler, id string, cond func(jobResponse) bool) jobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := getJob(t, h, id)
		if cond(body) {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: condition never held (state %q, %d/%d bands)",
				id, body.State, body.BandsDone, body.Bands)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// libStats is the uninterrupted in-process reference: one RegionStats
// per θ over the k×k unit-torus grid, via the library's single-threaded
// sweep.
func libStats(t *testing.T, net *sensor.Network, thetasPi []float64, grid int) []core.RegionStats {
	t.Helper()
	points, err := deploy.GridPoints(geom.UnitTorus, grid)
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]core.RegionStats, len(thetasPi))
	for i, tp := range thetasPi {
		checker, err := core.NewChecker(net, tp*math.Pi)
		if err != nil {
			t.Fatal(err)
		}
		stats[i] = checker.SurveyRegion(points)
	}
	return stats
}

// TestJobSurveyMatchesLibrary submits a survey job and asserts the
// asynchronous, band-partitioned result is bit-identical (struct
// equality on the exact-integer RegionStats) to the library's
// synchronous whole-grid sweep.
func TestJobSurveyMatchesLibrary(t *testing.T) {
	srv := mustNewStopped(t, Config{})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	net := testNetwork(t, 150, 11)
	id := registerNet(t, h, net)

	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 24})
	if job.Bands != 24 || job.Grid != 24 {
		t.Fatalf("job bands/grid = %d/%d, want 24/24", job.Bands, job.Grid)
	}
	final := pollJob(t, h, job.ID)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final state %q (error %q), want done with result", final.State, final.Error)
	}
	want := libStats(t, net, []float64{0.25}, 24)
	if len(final.Result.Stats) != 1 || final.Result.Stats[0] != want[0] {
		t.Fatalf("job result %+v != library %+v", final.Result.Stats, want)
	}
	if line := metricLine(t, h, `fvcd_jobs_total{kind="survey",state="done"}`); !strings.HasSuffix(line, " 1") {
		t.Fatalf("done counter line = %q, want value 1", line)
	}
	if line := metricLine(t, h, "fvcd_job_bands_total"); !strings.HasSuffix(line, " 24") {
		t.Fatalf("bands counter line = %q, want value 24", line)
	}
}

// TestJobSweepMatchesLibrary runs a multi-θ sweep job and checks every
// per-angle slot against the library.
func TestJobSweepMatchesLibrary(t *testing.T) {
	srv := mustNewStopped(t, Config{})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	net := testNetwork(t, 120, 5)
	id := registerNet(t, h, net)

	thetas := []float64{0.2, 0.3, 0.5}
	job := submitJob(t, h, jobSubmitRequest{Kind: "sweep", Deployment: id, ThetasPi: thetas, Grid: 12})
	if job.Bands != 3*12 {
		t.Fatalf("sweep bands = %d, want 36", job.Bands)
	}
	final := pollJob(t, h, job.ID)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("final state %q (error %q), want done with result", final.State, final.Error)
	}
	want := libStats(t, net, thetas, 12)
	for i := range thetas {
		if final.Result.Stats[i] != want[i] {
			t.Fatalf("slot %d: job %+v != library %+v", i, final.Result.Stats[i], want[i])
		}
	}
}

// TestJobSubmitRejections walks the submit-time validation: every bad
// request must fail fast with the right status, before any compute.
func TestJobSubmitRejections(t *testing.T) {
	srv := mustNewStopped(t, Config{MaxThetas: 4})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	id := registerNet(t, h, testNetwork(t, 50, 3))

	cases := []struct {
		name string
		req  jobSubmitRequest
		code int
	}{
		{"unknown kind", jobSubmitRequest{Kind: "mosaic", Deployment: id, ThetaPi: 0.25, Grid: 8}, http.StatusBadRequest},
		{"unknown deployment", jobSubmitRequest{Kind: "survey", Deployment: "dep-nope", ThetaPi: 0.25, Grid: 8}, http.StatusNotFound},
		{"both theta forms", jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, ThetasPi: []float64{0.5}, Grid: 8}, http.StatusBadRequest},
		{"no theta", jobSubmitRequest{Kind: "survey", Deployment: id, Grid: 8}, http.StatusBadRequest},
		{"sweep needs one theta each band", jobSubmitRequest{Kind: "sweep", Deployment: id, ThetasPi: []float64{0.25, 0}, Grid: 8}, http.StatusBadRequest},
		{"too many thetas", jobSubmitRequest{Kind: "sweep", Deployment: id, ThetasPi: []float64{0.1, 0.2, 0.3, 0.4, 0.5}, Grid: 8}, http.StatusBadRequest},
		{"grid over cap", jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 400}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		body, err := json.Marshal(tc.req)
		if err != nil {
			t.Fatal(err)
		}
		rec := do(t, h, "POST", "/v1/jobs", body)
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.code, rec.Body.String())
		}
	}
}

// TestJobCancelLifecycle pins the worker pool on a fault gate and walks
// the cancellation edges: a queued job cancels synchronously, cancel is
// idempotent, a running job cancels once its band unblocks, and unknown
// ids answer 404 on both GET and DELETE.
func TestJobCancelLifecycle(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNewStopped(t, Config{JobConcurrency: 1, JobQueue: 8})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	id := registerNet(t, h, testNetwork(t, 60, 9))

	gate := make(chan struct{})
	remove := faultinject.Set(faultinject.JobBand, func() error {
		<-gate
		return nil
	})
	defer remove()

	// job1 occupies the single survey worker, blocked inside band 0.
	job1 := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	pollJobUntil(t, h, job1.ID, func(b jobResponse) bool { return b.State == "running" })

	// job2 never leaves the queue: cancelling it is synchronous.
	job2 := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	rec := do(t, h, "DELETE", "/v1/jobs/"+job2.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel queued: status %d: %s", rec.Code, rec.Body.String())
	}
	var cancelled jobResponse
	decode(t, rec, &cancelled)
	if cancelled.State != "cancelled" {
		t.Fatalf("queued job cancel state = %q, want cancelled", cancelled.State)
	}

	// Double-cancel is an idempotent re-read of the terminal body.
	rec = do(t, h, "DELETE", "/v1/jobs/"+job2.ID, nil)
	var again jobResponse
	decode(t, rec, &again)
	if rec.Code != http.StatusOK || again.State != "cancelled" || again.FinishedNS != cancelled.FinishedNS {
		t.Fatalf("double cancel: status %d state %q finished %d, want 200/cancelled/%d",
			rec.Code, again.State, again.FinishedNS, cancelled.FinishedNS)
	}

	// Cancelling the running job takes effect when its band unblocks.
	rec = do(t, h, "DELETE", "/v1/jobs/"+job1.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel running: status %d: %s", rec.Code, rec.Body.String())
	}
	remove()
	close(gate)
	if final := pollJob(t, h, job1.ID); final.State != "cancelled" {
		t.Fatalf("running job final state = %q, want cancelled", final.State)
	}

	if rec := do(t, h, "GET", "/v1/jobs/job-nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET unknown job: status %d, want 404", rec.Code)
	}
	if rec := do(t, h, "DELETE", "/v1/jobs/job-nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: status %d, want 404", rec.Code)
	}
}

// TestJobTTLExpiry lets a done job's retention TTL lapse and asserts
// the id answers 410 Gone — the distinct "existed, collected" signal.
func TestJobTTLExpiry(t *testing.T) {
	srv := mustNewStopped(t, Config{JobTTL: 20 * time.Millisecond})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	id := registerNet(t, h, testNetwork(t, 40, 2))

	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 4})
	pollJob(t, h, job.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(t, h, "GET", "/v1/jobs/"+job.ID, nil)
		if rec.Code == http.StatusGone {
			break
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("expired job: status %d, want 200 then 410: %s", rec.Code, rec.Body.String())
		}
		if time.Now().After(deadline) {
			t.Fatal("job never expired to 410")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobQueueFull saturates a depth-1 queue behind a blocked worker
// and asserts the third submit sheds with 429 and a Retry-After hint.
func TestJobQueueFull(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNewStopped(t, Config{JobConcurrency: 1, JobQueue: 1})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	id := registerNet(t, h, testNetwork(t, 60, 4))

	gate := make(chan struct{})
	remove := faultinject.Set(faultinject.JobBand, func() error {
		<-gate
		return nil
	})
	defer remove()

	running := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	pollJobUntil(t, h, running.ID, func(b jobResponse) bool { return b.State == "running" })
	submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})

	body, _ := json.Marshal(jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	rec := do(t, h, "POST", "/v1/jobs", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	remove()
	close(gate)
}

// TestInlineSurveyTimeoutPointsAtJobs pins satellite #1: an inline
// survey that outlives its request deadline answers 504 with the
// machine-readable retry_as_job hint naming the job endpoint.
func TestInlineSurveyTimeoutPointsAtJobs(t *testing.T) {
	srv := mustNewStopped(t, Config{SurveyTimeout: time.Nanosecond})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	id := registerNet(t, h, testNetwork(t, 80, 6))

	body, _ := json.Marshal(surveyRequest{ThetaPi: 0.25, Grid: 32})
	rec := do(t, h, "POST", "/v1/deployments/"+id+"/survey", body)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("survey under 1ns deadline: status %d, want 504: %s", rec.Code, rec.Body.String())
	}
	var e errorResponse
	decode(t, rec, &e)
	if !e.RetryAsJob || e.Jobs != "/v1/jobs" {
		t.Fatalf("504 body = %+v, want retry_as_job=true jobs=/v1/jobs", e)
	}
}

// TestJobPanicFailsOnlyThatJob injects a band panic and asserts the
// containment contract: the poisoned job fails with a structured error,
// the daemon keeps answering, and the next job completes normally.
func TestJobPanicFailsOnlyThatJob(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNewStopped(t, Config{})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	net := testNetwork(t, 60, 8)
	id := registerNet(t, h, net)

	remove := faultinject.Set(faultinject.JobPanic, func() error {
		panic("injected job chaos")
	})
	defer remove()

	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	final := pollJob(t, h, job.ID)
	if final.State != "failed" || !strings.Contains(final.Error, "panic in band") {
		t.Fatalf("panicked job: state %q error %q, want failed with panic error", final.State, final.Error)
	}
	if line := metricLine(t, h, `fvcd_jobs_total{kind="survey",state="failed"}`); !strings.HasSuffix(line, " 1") {
		t.Fatalf("failed counter line = %q, want value 1", line)
	}

	// The daemon survived: health answers and a fresh job completes once
	// the fault is disarmed.
	if rec := do(t, h, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: status %d", rec.Code)
	}
	remove()
	job2 := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	if final := pollJob(t, h, job2.ID); final.State != "done" {
		t.Fatalf("post-panic job: state %q (error %q), want done", final.State, final.Error)
	}
}

// TestJobJournalFaultRunsMemoryOnly arms the job-journal write fault on
// a durable server and asserts the degradation contract: submissions
// still succeed, the job completes memory-only (durable=false) with a
// correct result, /readyz reports degraded, and the next successful
// journal write heals readiness.
func TestJobJournalFaultRunsMemoryOnly(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNewStopped(t, Config{StateDir: t.TempDir()})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	net := testNetwork(t, 60, 10)
	id := registerNet(t, h, net)

	remove := faultinject.Set(faultinject.JobJournalWrite, faultinject.Error(errors.New("disk gone")))
	defer remove()

	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 8})
	waitReadyz(t, h, ReadyDegraded)
	final := pollJob(t, h, job.ID)
	if final.State != "done" || final.Durable {
		t.Fatalf("degraded job: state %q durable %v, want done memory-only", final.State, final.Durable)
	}
	want := libStats(t, net, []float64{0.25}, 8)
	if final.Result == nil || final.Result.Stats[0] != want[0] {
		t.Fatalf("memory-only result %+v != library %+v", final.Result, want)
	}

	remove()
	job2 := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 8})
	if final := pollJob(t, h, job2.ID); final.State != "done" || !final.Durable {
		t.Fatalf("healed job: state %q durable %v, want done durable", final.State, final.Durable)
	}
	waitReadyz(t, h, ReadyOK)
}

// TestJobReplayFaultStartsEmpty injects a replay failure at startup:
// the daemon must come up serving (no restored jobs) rather than crash.
func TestJobReplayFaultStartsEmpty(t *testing.T) {
	defer faultinject.Reset()
	remove := faultinject.Set(faultinject.JobReplay, faultinject.Error(errors.New("replay refused")))
	defer remove()
	srv := mustNewStopped(t, Config{StateDir: t.TempDir()})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	remove()

	id := registerNet(t, h, testNetwork(t, 40, 12))
	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 4})
	if final := pollJob(t, h, job.ID); final.State != "done" {
		t.Fatalf("job after replay fault: state %q, want done", final.State)
	}
}

// TestJobResumeAfterRestart is the keystone crash test: a throttled
// survey job is interrupted mid-run by a shutdown (which, like a kill
// -9, writes no terminal record), and a second server on the same state
// dir must resume it from the last journaled band and finish with a
// result bit-identical to an uninterrupted run and to the library.
func TestJobResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	net := testNetwork(t, 100, 13)

	srv1 := mustNew(t, Config{StateDir: dir, JobThrottle: 25 * time.Millisecond})
	h1 := srv1.Handler()
	waitReadyz(t, h1, ReadyOK)
	id := registerNet(t, h1, net)
	job := submitJob(t, h1, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 10})
	if !job.Durable {
		t.Fatal("journaled server accepted a non-durable job")
	}
	pollJobUntil(t, h1, job.ID, func(b jobResponse) bool { return b.BandsDone >= 2 })
	if err := srv1.Shutdown(t.Context()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart on the same state dir, unthrottled. The deployment revives
	// from the deployment journal and the job from its own journal.
	srv2 := mustNewStopped(t, Config{StateDir: dir})
	h2 := srv2.Handler()
	waitReadyz(t, h2, ReadyOK)
	final := pollJob(t, h2, job.ID)
	if final.State != "done" || final.Result == nil {
		t.Fatalf("resumed job: state %q (error %q), want done with result", final.State, final.Error)
	}
	if !final.Resumed {
		t.Fatal("finished job does not report resumed=true")
	}
	line := metricLine(t, h2, "fvcd_job_resume_total")
	if line != "fvcd_job_resume_total 1" {
		t.Fatalf("resume counter line = %q, want fvcd_job_resume_total 1", line)
	}

	// Bit-identical twice over: against a fresh uninterrupted job on the
	// restarted server, and against the in-process library sweep.
	fresh := submitJob(t, h2, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 10})
	freshFinal := pollJob(t, h2, fresh.ID)
	if freshFinal.State != "done" {
		t.Fatalf("fresh job: state %q, want done", freshFinal.State)
	}
	if final.Result.Stats[0] != freshFinal.Result.Stats[0] {
		t.Fatalf("resumed result %+v != fresh result %+v", final.Result.Stats[0], freshFinal.Result.Stats[0])
	}
	want := libStats(t, net, []float64{0.25}, 10)
	if final.Result.Stats[0] != want[0] {
		t.Fatalf("resumed result %+v != library %+v", final.Result.Stats[0], want[0])
	}
}

// TestJobEventsStream exercises the SSE endpoint over real HTTP: a
// throttled job streams at least one band event and ends with a
// terminal "done" snapshot; re-subscribing to the finished job answers
// the terminal snapshot immediately and closes.
func TestJobEventsStream(t *testing.T) {
	srv := mustNewStopped(t, Config{JobThrottle: 15 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	id := registerNet(t, h, testNetwork(t, 60, 14))

	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	bands, finalState := streamEvents(t, ts.URL+"/v1/jobs/"+job.ID+"/events")
	if bands == 0 {
		t.Fatal("stream carried no band events")
	}
	if finalState != "done" {
		t.Fatalf("stream final snapshot state = %q, want done", finalState)
	}

	// A subscription to the already-terminal job answers the snapshot
	// and closes immediately.
	if _, finalState := streamEvents(t, ts.URL+"/v1/jobs/"+job.ID+"/events"); finalState != "done" {
		t.Fatalf("terminal re-subscribe state = %q, want done", finalState)
	}

	if rec := do(t, h, "GET", "/v1/jobs/job-nope/events", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("events for unknown job: status %d, want 404", rec.Code)
	}
}

// streamEvents consumes one SSE stream to EOF, returning the number of
// band events and the state of the last snapshot seen.
func streamEvents(t *testing.T, url string) (bands int, finalState string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			if event == "band" {
				bands++
			}
		case strings.HasPrefix(line, "data: ") && event == "snapshot":
			var snap jobResponse
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				t.Fatalf("snapshot payload: %v", err)
			}
			finalState = snap.State
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return bands, finalState
}

// TestJobTransientBandRetries proves the server's executor composes
// with the manager's bounded retry: two injected transient band faults
// are absorbed and the job still matches the library bit-identically.
func TestJobTransientBandRetries(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNewStopped(t, Config{})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)
	net := testNetwork(t, 60, 15)
	id := registerNet(t, h, net)

	var fails atomic.Int64
	remove := faultinject.Set(faultinject.JobBand, func() error {
		if fails.Add(1) <= 2 {
			return fmt.Errorf("%w: injected band flake", experiment.ErrTransient)
		}
		return nil
	})
	defer remove()

	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 6})
	final := pollJob(t, h, job.ID)
	if final.State != "done" {
		t.Fatalf("flaky-band job: state %q (error %q), want done", final.State, final.Error)
	}
	want := libStats(t, net, []float64{0.25}, 6)
	if final.Result.Stats[0] != want[0] {
		t.Fatalf("retried result %+v != library %+v", final.Result.Stats[0], want[0])
	}
}

// metricValue parses the sample value off a /metrics line returned by
// metricLine, failing if the line is absent.
func metricValue(t *testing.T, h http.Handler, prefix string) float64 {
	t.Helper()
	line := metricLine(t, h, prefix)
	if line == "" {
		t.Fatalf("no /metrics line starts with %q", prefix)
	}
	fields := strings.Fields(line)
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		t.Fatalf("metric line %q: %v", line, err)
	}
	return v
}

// TestSurveyPointTelemetry checks the production visibility of the
// survey kernel: inline /survey requests and job bands both feed
// fvcd_survey_points_total, and each observes the per-band ns/point
// histogram under its own source label.
func TestSurveyPointTelemetry(t *testing.T) {
	srv := mustNewStopped(t, Config{})
	h := srv.Handler()
	waitReadyz(t, h, "ok")
	net := testNetwork(t, 60, 11)
	id := registerNet(t, h, net)

	if got := metricValue(t, h, "fvcd_survey_points_total"); got != 0 {
		t.Fatalf("fvcd_survey_points_total starts at %v, want 0", got)
	}

	// Inline survey: one 32×32 sweep = 1024 points, one histogram
	// observation under source="survey".
	body, err := json.Marshal(surveyRequest{ThetaPi: 0.25, Grid: 32})
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, h, "POST", "/v1/deployments/"+id+"/survey", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("survey: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := metricValue(t, h, "fvcd_survey_points_total"); got != 1024 {
		t.Fatalf("after inline survey: fvcd_survey_points_total = %v, want 1024", got)
	}
	if got := metricValue(t, h, `fvcd_band_ns_per_point_count{source="survey"}`); got != 1 {
		t.Fatalf("survey histogram count = %v, want 1", got)
	}
	if got := metricValue(t, h, `fvcd_band_ns_per_point_count{source="job"}`); got != 0 {
		t.Fatalf("job histogram count = %v before any job, want 0", got)
	}

	// Survey job: one θ × Grid 24 = 24 bands of 24 points each. The
	// counter grows by the full 576 and the job-source histogram sees
	// one observation per band.
	job := submitJob(t, h, jobSubmitRequest{Kind: "survey", Deployment: id, ThetaPi: 0.25, Grid: 24})
	if final := pollJob(t, h, job.ID); final.State != "done" {
		t.Fatalf("job state %q (error %q), want done", final.State, final.Error)
	}
	if got := metricValue(t, h, "fvcd_survey_points_total"); got != 1024+576 {
		t.Fatalf("after job: fvcd_survey_points_total = %v, want %d", got, 1024+576)
	}
	if got := metricValue(t, h, `fvcd_band_ns_per_point_count{source="job"}`); got != 24 {
		t.Fatalf("job histogram count = %v, want 24 (one per band)", got)
	}
	if got := metricValue(t, h, `fvcd_band_ns_per_point_count{source="survey"}`); got != 1 {
		t.Fatalf("survey histogram count moved to %v after a job, want 1", got)
	}
}
