package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"fullview/internal/core"
	"fullview/internal/depcache"
	"fullview/internal/depjournal"
	"fullview/internal/deploy"
	"fullview/internal/faultinject"
	"fullview/internal/geom"
	"fullview/internal/sensor"
	"fullview/internal/spatial"
)

// cancelCheckInterval is how many query points are evaluated between
// context checks, mirroring the sweep engine's constant: cancellation
// lands within microseconds of work without touching the per-point hot
// path.
const cancelCheckInterval = 256

// handleRegister builds (or revives) a deployment and returns its id.
// The id is the network's content fingerprint, so the same network —
// whether sent as the same explicit camera list or re-derived from the
// same deterministic recipe — maps to the same cache entry; the
// expensive spatial-index construction runs only on a cache miss, and
// concurrent registrations of one fingerprint build single-flight.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	net, err := s.buildNetwork(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := depcache.Fingerprint(net)
	entry, hit, err := s.cache.GetOrBuild(fp, func() (*depcache.Entry, error) {
		if err := faultinject.Fire(faultinject.DepcacheBuild); err != nil {
			return nil, err
		}
		// An id the journal already holds may carry mutations (or a
		// compaction-folded history): rebuild from the journal, not from
		// this request, or re-registering after a PATCH would resurrect
		// the pre-mutation state.
		if s.journal != nil {
			if rec, ok := s.journal.Lookup(fp); ok {
				return s.entryFromRecord(rec)
			}
		}
		// Persist before caching: a deployment the journal could not
		// record is refused outright (503, retry later) rather than
		// served now and forgotten on restart. Cache hits skip this —
		// cached implies journaled.
		if err := s.persist(fp, &req); err != nil {
			return nil, err
		}
		return &depcache.Entry{
			Fingerprint: fp,
			Net:         net,
			Index:       spatial.NewMutableIndex(net, s.mutableOpts(0)),
		}, nil
	})
	if err != nil {
		if errors.Is(err, errNotDurable) {
			writeRetryable(w, http.StatusServiceUnavailable, err.Error())
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.m.registered.Inc()
	code := http.StatusCreated
	if hit {
		code = http.StatusOK
	}
	s.logf("register %s: %d cameras, cached=%v", fp, entry.Index.Len(), hit)
	writeJSON(w, code, registerResponse{
		ID:        entry.Fingerprint,
		Cameras:   entry.Index.Len(),
		Torus:     entry.Net.Torus().Side(),
		Cached:    hit,
		MaxRadius: entry.Index.MaxRadius(),
		Version:   entry.Index.Version(),
	})
}

// deployment resolves the {id} path value against the cache, falling
// back to the durable journal on a miss — a journaled deployment
// survives both LRU eviction and a process restart, rebuilt on first
// use. Only an id that neither the cache nor the journal knows is a
// 404; clients then re-register (an idempotent, cheap-on-hit
// operation).
func (s *Server) deployment(w http.ResponseWriter, r *http.Request) (*depcache.Entry, bool) {
	id := r.PathValue("id")
	entry, ok := s.cache.Get(id)
	if !ok {
		entry, ok = s.revive(id)
	}
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("deployment %q not registered (or evicted); re-register it", id))
		return nil, false
	}
	return entry, true
}

// handleInspect describes a registered deployment's live state:
// camera count, version, and overlay size reflect every applied patch,
// so operators can observe a deployment's churn without /metrics.
func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.deployment(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, inspectResponse{
		ID:               entry.Fingerprint,
		Cameras:          entry.Index.Len(),
		Torus:            entry.Net.Torus().Side(),
		MaxRadius:        entry.Index.MaxRadius(),
		TotalSensingArea: entry.Index.TotalSensingArea(),
		Version:          entry.Index.Version(),
		Overlay:          entry.Index.OverlaySize(),
	})
}

// badPatch is a PATCH validation failure, mapped to 400. It exists so
// the apply closure running under the cache's mutation lock can
// distinguish "client sent nonsense" from "journal is failing" (503)
// and "internal invariant broke" (500).
type badPatch struct{ msg string }

func (e *badPatch) Error() string { return e.msg }

// handleMutate applies a PATCH — re-aims, removals, additions — to a
// registered deployment. The whole batch is validated first, journaled
// (persist-before-apply: a batch the journal cannot record is refused
// with 503 + Retry-After and the served state is untouched), and only
// then applied to the live index, all under the deployment's mutation
// lock so concurrent patches serialize and journal order equals apply
// order.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req patchRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Reaim) == 0 && len(req.Remove) == 0 && len(req.Add) == 0 {
		writeError(w, http.StatusBadRequest, "empty patch: give reaim, remove, or add")
		return
	}
	var resp patchResponse
	found, err := s.cache.Mutate(id,
		func() (*depcache.Entry, bool) { return s.revive(id) },
		func(e *depcache.Entry) error { return s.applyPatch(e, &req, &resp) })
	if !found {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("deployment %q not registered (or evicted); re-register it", id))
		return
	}
	if err != nil {
		var bad *badPatch
		switch {
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, bad.msg)
		case errors.Is(err, errNotDurable):
			writeRetryable(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.logf("mutate %s: reaim=%d remove=%d add=%d → version %d (%d cameras, overlay %d)",
		id, resp.Reaimed, resp.Removed, resp.Added, resp.Version, resp.Cameras, resp.Overlay)
	writeJSON(w, http.StatusOK, resp)
}

// applyPatch validates, journals, and applies one PATCH batch to an
// entry. Runs under the deployment's mutation lock.
func (s *Server) applyPatch(e *depcache.Entry, req *patchRequest, resp *patchResponse) error {
	live := e.Index.Len()
	if n := live - len(req.Remove) + len(req.Add); n > s.cfg.MaxCameras {
		return &badPatch{fmt.Sprintf("patched deployment would have %d cameras, cap is %d", n, s.cfg.MaxCameras)}
	}
	reaims := make([]spatial.ReaimOp, len(req.Reaim))
	for i, op := range req.Reaim {
		if op.Index < 0 || op.Index >= live {
			return &badPatch{fmt.Sprintf("reaim index %d out of range [0, %d)", op.Index, live)}
		}
		reaims[i] = spatial.ReaimOp{Index: op.Index, Orient: op.Orient}
	}
	seen := make(map[int]bool, len(req.Remove))
	for _, i := range req.Remove {
		if i < 0 || i >= live {
			return &badPatch{fmt.Sprintf("remove index %d out of range [0, %d)", i, live)}
		}
		if seen[i] {
			return &badPatch{fmt.Sprintf("remove index %d listed twice", i)}
		}
		seen[i] = true
	}
	adds := make([]sensor.Camera, len(req.Add))
	for i, c := range req.Add {
		adds[i] = sensor.Camera{
			Pos:      geom.V(c.X, c.Y),
			Orient:   c.Orient,
			Radius:   c.Radius,
			Aperture: c.Aperture,
			Group:    c.Group,
		}
		if err := adds[i].Validate(); err != nil {
			return &badPatch{fmt.Sprintf("add camera %d: %v", i, err)}
		}
	}

	// Journal the batch before touching the index, in the exact apply
	// order; the replayed journal then reproduces the live state
	// bit-for-bit.
	var recs []depjournal.Record
	if len(reaims) > 0 {
		ops := make([]depjournal.ReaimOp, len(reaims))
		for i, op := range reaims {
			ops[i] = depjournal.ReaimOp{I: op.Index, Orient: op.Orient}
		}
		recs = append(recs, depjournal.Record{ID: e.Fingerprint, Op: depjournal.OpReaim, Reaim: ops})
	}
	if len(req.Remove) > 0 {
		recs = append(recs, depjournal.Record{ID: e.Fingerprint, Op: depjournal.OpRemove, Remove: req.Remove})
	}
	if len(adds) > 0 {
		cams := make([]depjournal.Camera, len(req.Add))
		for i, c := range req.Add {
			cams[i] = depjournal.Camera{X: c.X, Y: c.Y, Orient: c.Orient,
				Radius: c.Radius, Aperture: c.Aperture, Group: c.Group}
		}
		recs = append(recs, depjournal.Record{ID: e.Fingerprint, Op: depjournal.OpAdd, Cameras: cams})
	}
	// Stamp each record with the logical version it produces (the index
	// bumps once per journaled mutation record). The stamps travel with
	// the records into the mirror stream, letting replicas deduplicate a
	// mirror batch racing an anti-entropy repair of the same records —
	// both paths journal identical bytes, so "already at this version"
	// means "already holds this record".
	v0 := e.Index.Version()
	for i := range recs {
		recs[i].BaseVersion = v0 + uint64(i) + 1
	}
	if err := s.persistMutations(e.Fingerprint, recs); err != nil {
		return err
	}

	// Everything was validated against the live list above, so the index
	// cannot refuse these; an error here is an internal invariant break
	// and surfaces as 500.
	if len(reaims) > 0 {
		if _, err := e.Index.Reaim(reaims); err != nil {
			return fmt.Errorf("apply reaim: %w", err)
		}
	}
	if len(req.Remove) > 0 {
		if _, err := e.Index.Remove(req.Remove); err != nil {
			return fmt.Errorf("apply remove: %w", err)
		}
	}
	if len(adds) > 0 {
		if _, err := e.Index.Add(adds); err != nil {
			return fmt.Errorf("apply add: %w", err)
		}
	}
	*resp = patchResponse{
		ID:      e.Fingerprint,
		Version: e.Index.Version(),
		Cameras: e.Index.Len(),
		Overlay: e.Index.OverlaySize(),
		Reaimed: len(reaims),
		Removed: len(req.Remove),
		Added:   len(adds),
	}
	return nil
}

// handleQuery answers a batch of point full-view checks across a
// θ-list. One core.MultiChecker is built per request from the cached
// index — the candidate gather and max-gap scan run once per point no
// matter how many angles are asked — and its verdicts are returned
// bit-identical to an in-process MultiChecker.Evaluate.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.deployment(w, r)
	if !ok {
		return
	}
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "points must list at least one sample point")
		return
	}
	if len(req.Points) > s.cfg.MaxBatchPoints {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d points exceeds cap %d", len(req.Points), s.cfg.MaxBatchPoints))
		return
	}
	thetas, err := thetasFromPi(req.ThetasPi, s.cfg.MaxThetas)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Pin one snapshot for the whole batch: every point is evaluated
	// against the same deployment version even while patches land.
	view := entry.Index.Snapshot()
	mc, err := core.NewMultiCheckerFromSource(view, thetas)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Latency injection point for the deadline chaos tests: a sleeping
	// hook here simulates a pathologically slow query.
	if err := faultinject.Fire(faultinject.QueryLatency); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	ctx := r.Context()
	results := make([]pointResultJSON, len(req.Points))
	for i, p := range req.Points {
		if i%cancelCheckInterval == 0 && ctx.Err() != nil {
			writeCtxError(w, ctx.Err())
			return
		}
		rep := mc.Evaluate(geom.V(p.X, p.Y))
		verdicts := make([]thetaVerdictJSON, len(rep.PerTheta))
		for j, v := range rep.PerTheta {
			verdicts[j] = thetaVerdictJSON{
				ThetaPi:    req.ThetasPi[j],
				FullView:   v.FullView,
				Necessary:  v.Necessary,
				Sufficient: v.Sufficient,
			}
		}
		results[i] = pointResultJSON{
			Point:       p,
			NumCovering: rep.NumCovering,
			MaxGap:      rep.MaxGap,
			PerTheta:    verdicts,
		}
	}
	s.m.points.Add(int64(len(req.Points)))
	writeJSON(w, http.StatusOK, queryResponse{ID: entry.Fingerprint, Version: view.Version(), Results: results})
}

// handleSurvey sweeps a sample grid through the parallel sweep engine
// with the request's context wired into the engine's cancellation: a
// disconnecting client aborts its sweep within a few hundred points.
func (s *Server) handleSurvey(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.deployment(w, r)
	if !ok {
		return
	}
	var req surveyRequest
	if err := decodeBody(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	// Pin one snapshot for the whole sweep (same rationale as query).
	view := entry.Index.Snapshot()
	checker, err := core.NewCheckerFromSource(view, req.ThetaPi*math.Pi)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Resolve the grid side first and vet k×k against the point cap
	// BEFORE materialising the grid: a hostile {"grid": 100000} must be
	// rejected by arithmetic, not by attempting the allocation.
	k := req.Grid
	if k <= 0 {
		k, err = deploy.DenseGridSide(view.Len())
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	// The k ≤ cap check also makes the k² product safe from overflow:
	// past it, k² ≤ cap², which fits int64 for any plausible cap.
	if int64(k) > int64(s.cfg.MaxBatchPoints) || int64(k)*int64(k) > int64(s.cfg.MaxBatchPoints) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("survey of %d×%d points exceeds cap %d", k, k, s.cfg.MaxBatchPoints))
		return
	}
	points, err := deploy.GridPoints(view.Torus(), k)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	workers := s.cfg.SurveyWorkers
	if req.Workers > 0 && req.Workers < workers {
		workers = req.Workers
	}

	t0 := time.Now()
	stats, err := checker.SurveyRegionContext(r.Context(), points, workers)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			// The inline survey outlived SurveyTimeout: steer the client
			// to the async job API, where the same sweep runs without a
			// request deadline and survives crashes.
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{
				Error:      "deadline exceeded: survey outlived the inline request timeout",
				RetryAsJob: true,
				Jobs:       "/v1/jobs",
			})
		case errors.Is(err, context.Canceled):
			writeCtxError(w, err)
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	elapsed := time.Since(t0)
	s.m.points.Add(int64(stats.Points))
	s.m.surveyPoints.Add(int64(stats.Points))
	if stats.Points > 0 {
		s.m.pointCost["survey"].Observe(elapsed.Nanoseconds() / int64(stats.Points))
	}
	writeJSON(w, http.StatusOK, surveyResponse{
		ID:                 entry.Fingerprint,
		Version:            view.Version(),
		ThetaPi:            req.ThetaPi,
		Points:             stats.Points,
		FullView:           stats.FullView,
		Necessary:          stats.Necessary,
		Sufficient:         stats.Sufficient,
		MinCovering:        stats.MinCovering,
		MeanCovering:       stats.MeanCovering,
		FullViewFraction:   stats.FullViewFraction(),
		NecessaryFraction:  stats.NecessaryFraction(),
		SufficientFraction: stats.SufficientFraction(),
		ElapsedNS:          elapsed.Nanoseconds(),
	})
}

// writeCtxError maps a context failure to its status: an expired
// deadline (the server's per-route timeout) is 504; a cancellation
// (the client walked away) is 499.
func writeCtxError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		return
	}
	writeError(w, StatusClientClosedRequest, "request cancelled")
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptimeNs": time.Since(s.start).Nanoseconds(),
	})
}

// handleReadyz is the readiness probe, distinct from liveness: a
// starting server (journal replay warming the cache) answers 503 so
// orchestrators hold traffic; a degraded one (journal writes failing)
// answers 200 — it is still serving queries from memory — with the
// state and reason in the body so operators see the problem.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	state, reason := s.readiness()
	code := http.StatusOK
	if state == ReadyStarting {
		// Starting is retryable by definition — the replay will finish —
		// so this 503 carries the same jittered Retry-After as every
		// other retryable rejection.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfter())
	}
	body := map[string]any{"status": state}
	if reason != "" {
		body["reason"] = reason
	}
	writeJSON(w, code, body)
}
