package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

// cameraJSON is one explicitly-placed camera. Angles are radians here —
// unlike the profile string, whose third field is a fraction of π by
// the ParseProfile format's definition.
type cameraJSON struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Orient   float64 `json:"orient"`
	Radius   float64 `json:"radius"`
	Aperture float64 `json:"aperture"`
	Group    int     `json:"group,omitempty"`
}

// registerRequest registers a deployment either from an explicit camera
// list or from a sensor profile plus a deterministic deployment recipe
// (scheme, count/density, seed). Exactly one of the two forms must be
// used.
type registerRequest struct {
	// Torus is the operational region's side length (default 1, the
	// paper's unit torus).
	Torus float64 `json:"torus,omitempty"`

	// Cameras places each camera explicitly.
	Cameras []cameraJSON `json:"cameras,omitempty"`

	// Profile is the heterogeneity profile in ParseProfile form
	// ("fraction:radius:aperturePi,…"), used with N or Density.
	Profile string `json:"profile,omitempty"`
	// N deploys exactly N cameras uniformly (scheme "uniform").
	N int `json:"n,omitempty"`
	// Density is the Poisson intensity (scheme "poisson").
	Density float64 `json:"density,omitempty"`
	// Deploy selects the scheme: "uniform" (default) or "poisson".
	Deploy string `json:"deploy,omitempty"`
	// Seed is the deterministic RNG seed (default 1). Equal recipes give
	// equal networks — and therefore equal deployment ids.
	Seed uint64 `json:"seed,omitempty"`
}

// registerResponse names the registered deployment. ID is the content
// fingerprint of the network: re-registering the same network returns
// the same id with cached=true. Cameras and Version describe the LIVE
// state — a re-registration of an id that was mutated since reports the
// mutated deployment, not the base registration.
type registerResponse struct {
	ID        string  `json:"id"`
	Cameras   int     `json:"cameras"`
	Torus     float64 `json:"torus"`
	Cached    bool    `json:"cached"`
	MaxRadius float64 `json:"maxRadius"`
	Version   uint64  `json:"version"`
}

// inspectResponse describes a registered deployment's live state.
// Version counts applied mutation batches (monotonic across restarts);
// Overlay is the current delta-overlay size — removed plus added
// cameras not yet folded into the CSR base — so operators can watch
// overlay growth per deployment without scraping /metrics.
type inspectResponse struct {
	ID               string  `json:"id"`
	Cameras          int     `json:"cameras"`
	Torus            float64 `json:"torus"`
	MaxRadius        float64 `json:"maxRadius"`
	TotalSensingArea float64 `json:"totalSensingArea"`
	Version          uint64  `json:"version"`
	Overlay          int     `json:"overlay"`
}

// reaimJSON re-points one live camera.
type reaimJSON struct {
	// Index addresses the camera in the live list: registration order,
	// as already modified by earlier patches (removed cameras are gone,
	// added ones appended).
	Index int `json:"index"`
	// Orient is the new facing direction in radians.
	Orient float64 `json:"orient"`
}

// patchRequest mutates a registered deployment in place. The three
// groups apply in a fixed order — reaim, then remove, then add — and
// all indices address the live list as it stood BEFORE the patch
// (reaiming does not renumber, so reaim and remove share one index
// space). At least one group must be non-empty.
type patchRequest struct {
	Reaim  []reaimJSON  `json:"reaim,omitempty"`
	Remove []int        `json:"remove,omitempty"`
	Add    []cameraJSON `json:"add,omitempty"`
}

// patchResponse reports the deployment state after the patch.
type patchResponse struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	Cameras int    `json:"cameras"`
	Overlay int    `json:"overlay"`
	Reaimed int    `json:"reaimed"`
	Removed int    `json:"removed"`
	Added   int    `json:"added"`
}

// pointJSON is one sample point.
type pointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// queryRequest asks for the full per-point diagnosis of a point batch
// across a θ-list. Effective angles are given as fractions of π,
// matching the CLI convention (thetasPi 0.25 ⇒ θ = π/4).
type queryRequest struct {
	ThetasPi []float64   `json:"thetasPi"`
	Points   []pointJSON `json:"points"`
}

// thetaVerdictJSON is one effective angle's verdict for one point.
type thetaVerdictJSON struct {
	ThetaPi    float64 `json:"thetaPi"`
	FullView   bool    `json:"fullView"`
	Necessary  bool    `json:"necessary"`
	Sufficient bool    `json:"sufficient"`
}

// pointResultJSON is the diagnosis of one point: the θ-independent
// quantities once, plus one verdict per requested angle.
type pointResultJSON struct {
	Point       pointJSON          `json:"point"`
	NumCovering int                `json:"numCovering"`
	MaxGap      float64            `json:"maxGap"`
	PerTheta    []thetaVerdictJSON `json:"perTheta"`
}

// queryResponse is the batch answer, in request point order. Version
// names the deployment version the whole batch was evaluated against
// (one pinned snapshot; concurrent patches do not tear a batch).
type queryResponse struct {
	ID      string            `json:"id"`
	Version uint64            `json:"version"`
	Results []pointResultJSON `json:"results"`
}

// surveyRequest asks for a region sweep. Grid > 0 surveys the k×k grid
// of cell centres; Grid == 0 surveys the paper's dense grid sized for
// the deployment's camera count. Workers caps the sweep's parallelism
// below the server default (0 keeps the default).
type surveyRequest struct {
	ThetaPi float64 `json:"thetaPi"`
	Grid    int     `json:"grid,omitempty"`
	Workers int     `json:"workers,omitempty"`
}

// surveyResponse reports the region statistics of a sweep. Version is
// the pinned deployment version the sweep ran against.
type surveyResponse struct {
	ID                 string  `json:"id"`
	Version            uint64  `json:"version"`
	ThetaPi            float64 `json:"thetaPi"`
	Points             int     `json:"points"`
	FullView           int     `json:"fullView"`
	Necessary          int     `json:"necessary"`
	Sufficient         int     `json:"sufficient"`
	MinCovering        int     `json:"minCovering"`
	MeanCovering       float64 `json:"meanCovering"`
	FullViewFraction   float64 `json:"fullViewFraction"`
	NecessaryFraction  float64 `json:"necessaryFraction"`
	SufficientFraction float64 `json:"sufficientFraction"`
	ElapsedNS          int64   `json:"elapsedNs"`
}

// errorResponse is the uniform error body. RetryAsJob and Jobs appear
// only on an inline-survey 504: a machine-readable hint that the same
// work should be resubmitted through the async job API at Jobs.
type errorResponse struct {
	Error      string `json:"error"`
	RetryAsJob bool   `json:"retry_as_job,omitempty"`
	Jobs       string `json:"jobs,omitempty"`
}

// writeJSON encodes v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

// writeRetryable writes a retryable rejection — 429 admission
// shedding, or a transient 503 (journal not durable, job queue
// closing, cluster mirror failing) — with the uniform jittered
// fractional-seconds Retry-After. Every retryable 429/5xx the service
// emits goes through here, so clients can rely on the header being
// present whenever retrying is the right move.
func writeRetryable(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", retryAfter())
	writeError(w, code, msg)
}

// writeDecodeError maps a decodeBody failure to its status: a body
// tripping the MaxBytesReader cap is 413 Request Entity Too Large (the
// client must shrink the payload, not fix its JSON); everything else is
// a plain 400.
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte cap", tooLarge.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, "malformed body: "+err.Error())
}

// decodeBody strictly decodes a JSON request body into dst: unknown
// fields (almost always a misspelt parameter) and trailing garbage are
// rejected so a malformed request fails loudly instead of running with
// defaults.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// buildNetwork materialises the network a registration describes.
func (s *Server) buildNetwork(req *registerRequest) (*sensor.Network, error) {
	side := req.Torus
	if side == 0 {
		side = 1
	}
	t, err := geom.NewTorus(side)
	if err != nil {
		return nil, err
	}

	explicit := len(req.Cameras) > 0
	recipe := req.Profile != "" || req.N != 0 || req.Density != 0
	if explicit && recipe {
		return nil, errors.New("give either cameras or a profile deployment recipe, not both")
	}

	if explicit {
		if len(req.Cameras) > s.cfg.MaxCameras {
			return nil, fmt.Errorf("deployment has %d cameras, cap is %d", len(req.Cameras), s.cfg.MaxCameras)
		}
		cams := make([]sensor.Camera, len(req.Cameras))
		for i, c := range req.Cameras {
			cams[i] = sensor.Camera{
				Pos:      geom.V(c.X, c.Y),
				Orient:   c.Orient,
				Radius:   c.Radius,
				Aperture: c.Aperture,
				Group:    c.Group,
			}
		}
		return sensor.NewNetwork(t, cams)
	}

	if req.Profile == "" {
		return nil, errors.New("registration needs cameras or a profile")
	}
	profile, err := sensor.ParseProfile(req.Profile)
	if err != nil {
		return nil, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	gen := rng.New(seed, 0)
	switch req.Deploy {
	case "", "uniform":
		if req.Density != 0 {
			return nil, errors.New("density is a poisson parameter; uniform deployments take n")
		}
		if req.N <= 0 {
			return nil, errors.New("uniform deployment needs n > 0")
		}
		if req.N > s.cfg.MaxCameras {
			return nil, fmt.Errorf("deployment has %d cameras, cap is %d", req.N, s.cfg.MaxCameras)
		}
		return deploy.Uniform(t, profile, req.N, gen)
	case "poisson":
		if req.N != 0 {
			return nil, errors.New("n is a uniform parameter; poisson deployments take density")
		}
		if !(req.Density > 0) || math.IsInf(req.Density, 0) {
			return nil, errors.New("poisson deployment needs a positive finite density")
		}
		if expected := req.Density * t.Area(); expected > float64(s.cfg.MaxCameras) {
			return nil, fmt.Errorf("expected %g cameras exceeds cap %d", expected, s.cfg.MaxCameras)
		}
		return deploy.Poisson(t, profile, req.Density, gen)
	default:
		return nil, fmt.Errorf("unknown deployment scheme %q (uniform or poisson)", req.Deploy)
	}
}

// thetasFromPi validates a θ-list given as fractions of π and converts
// it to radians; the (0, π] range check itself is left to the core
// constructors so the service accepts exactly what the library accepts.
func thetasFromPi(thetasPi []float64, maxLen int) ([]float64, error) {
	if len(thetasPi) == 0 {
		return nil, errors.New("thetasPi must list at least one effective angle")
	}
	if len(thetasPi) > maxLen {
		return nil, fmt.Errorf("%d effective angles exceeds cap %d", len(thetasPi), maxLen)
	}
	thetas := make([]float64, len(thetasPi))
	for i, t := range thetasPi {
		thetas[i] = t * math.Pi
	}
	return thetas, nil
}
