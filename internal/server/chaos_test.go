package server

// Chaos suite: drives the server through injected faults (panics,
// journal write failures, slow handlers, kill-and-restart) and asserts
// the resilience contract — panics become structured 500s without
// leaking admission slots, journal failure degrades registration but
// never queries, and a restart on the same state dir answers
// bit-identically. Every fault goes through internal/faultinject, so
// nothing here is timing-dependent beyond deliberate deadlines.

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fullview/internal/faultinject"
)

// do drives one request through the handler directly (no TCP), which
// keeps fault windows deterministic.
func do(t *testing.T, h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, target, r))
	return rec
}

// decode unmarshals a recorder's JSON body.
func decode(t *testing.T, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
}

// metricLine returns the /metrics line starting with prefix, or "".
func metricLine(t *testing.T, h http.Handler, prefix string) string {
	t.Helper()
	rec := do(t, h, "GET", "/metrics", nil)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			return line
		}
	}
	return ""
}

// waitReadyz polls /readyz until it reports want (or the deadline).
func waitReadyz(t *testing.T, h http.Handler, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var body struct {
			Status string `json:"status"`
			Reason string `json:"reason"`
		}
		rec := do(t, h, "GET", "/readyz", nil)
		decode(t, rec, &body)
		if body.Status == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz stuck at %q (reason %q), want %q", body.Status, body.Reason, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPanicContainment injects a handler panic and asserts the panic
// contract: structured 500, fvcd_panics_total bumped, and — with
// MaxInFlight: 1 — the very next request is admitted and served,
// proving the admission slot unwound with the panic.
func TestPanicContainment(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNew(t, Config{MaxInFlight: 1, QueueTimeout: 5 * time.Millisecond})
	h := srv.Handler()

	remove := faultinject.Set(faultinject.Handler, func() error {
		panic("injected chaos panic")
	})
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 20, 1)))
	remove()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500: %s", rec.Code, rec.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, rec, &e)
	if !strings.Contains(e.Error, "panicked") {
		t.Fatalf("500 body %q does not name the panic", e.Error)
	}
	if line := metricLine(t, h, "fvcd_panics_total"); line != "fvcd_panics_total 1" {
		t.Fatalf("panic counter line = %q, want fvcd_panics_total 1", line)
	}

	// The only admission slot must have been released: this would 429
	// after the 5ms queue timeout if the panic leaked it.
	rec = do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 20, 1)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("request after panic answered %d, want 201: %s", rec.Code, rec.Body.String())
	}
}

// TestJournalWriteFailureDegrades wounds the journal and asserts the
// degraded contract: registration 503s with a clear body, /readyz says
// degraded, queries for already-registered deployments keep answering,
// and the first successful write after the fault clears heals the
// state (including re-registering the very deployment that failed,
// since a non-durable registration is never cached).
func TestJournalWriteFailureDegrades(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNew(t, Config{StateDir: t.TempDir()})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)

	var reg registerResponse
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 30, 1)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)

	remove := faultinject.Set(faultinject.JournalWrite, faultinject.Error(errors.New("disk on fire")))
	rec = do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 30, 2)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("register with failing journal answered %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var e struct {
		Error string `json:"error"`
	}
	decode(t, rec, &e)
	if !strings.Contains(e.Error, "not durable") {
		t.Fatalf("503 body %q does not explain durability", e.Error)
	}

	var ready struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	decode(t, do(t, h, "GET", "/readyz", nil), &ready)
	if ready.Status != ReadyDegraded || !strings.Contains(ready.Reason, "journal") {
		t.Fatalf("readyz = %+v, want degraded with a journal reason", ready)
	}

	// Memory-only operation: the earlier deployment still answers.
	q := []byte(`{"thetasPi":[0.25],"points":[{"x":0.5,"y":0.5}]}`)
	if rec := do(t, h, "POST", "/v1/deployments/"+reg.ID+"/query", q); rec.Code != http.StatusOK {
		t.Fatalf("query during degraded state answered %d: %s", rec.Code, rec.Body.String())
	}

	// Heal the fault: the failed registration retries cleanly (it was
	// never cached), and readyz recovers on the successful write.
	remove()
	rec = do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 30, 2)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register after healing answered %d: %s", rec.Code, rec.Body.String())
	}
	var reg2 registerResponse
	decode(t, rec, &reg2)
	if reg2.Cached {
		t.Fatal("failed registration was cached despite the journal refusing it")
	}
	waitReadyz(t, h, ReadyOK)

	if line := metricLine(t, h, "fvcd_journal_write_failures_total"); line != "fvcd_journal_write_failures_total 1" {
		t.Fatalf("journal failure counter = %q, want 1", line)
	}
}

// TestRestartBitIdentical is kill -9 in miniature: a server journals
// two registrations (explicit cameras and a recipe), answers a query,
// and is abandoned without any flush beyond the per-append fsync; a
// second server on the same state dir must answer the same query
// byte-for-byte and know both ids.
func TestRestartBitIdentical(t *testing.T) {
	state := t.TempDir()
	q := []byte(`{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9}]}`)

	srv1 := mustNew(t, Config{StateDir: state})
	h1 := srv1.Handler()
	waitReadyz(t, h1, ReadyOK)
	var regCams, regRecipe registerResponse
	rec := do(t, h1, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 40, 9)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register cameras: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &regCams)
	rec = do(t, h1, "POST", "/v1/deployments", []byte(`{"profile":"0.3:0.2:0.4,0.7:0.1:0.5","n":50,"seed":7}`))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register recipe: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &regRecipe)
	want1 := do(t, h1, "POST", "/v1/deployments/"+regCams.ID+"/query", q).Body.Bytes()
	want2 := do(t, h1, "POST", "/v1/deployments/"+regRecipe.ID+"/query", q).Body.Bytes()
	// No Shutdown: the journal's append-time fsync is the only thing a
	// kill -9 would have left us, so it is all this test relies on.

	srv2 := mustNew(t, Config{StateDir: state})
	h2 := srv2.Handler()
	waitReadyz(t, h2, ReadyOK)
	got1 := do(t, h2, "POST", "/v1/deployments/"+regCams.ID+"/query", q)
	got2 := do(t, h2, "POST", "/v1/deployments/"+regRecipe.ID+"/query", q)
	if got1.Code != http.StatusOK || got2.Code != http.StatusOK {
		t.Fatalf("restarted server answered %d/%d for journaled ids", got1.Code, got2.Code)
	}
	if !bytes.Equal(got1.Body.Bytes(), want1) {
		t.Errorf("explicit-camera query diverged across restart:\n pre: %s\npost: %s", want1, got1.Body.Bytes())
	}
	if !bytes.Equal(got2.Body.Bytes(), want2) {
		t.Errorf("recipe query diverged across restart:\n pre: %s\npost: %s", want2, got2.Body.Bytes())
	}
	if err := srv2.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
}

// TestReviveAfterEviction pins that journal-backed ids outlive the LRU:
// with a one-entry cache, registering a second deployment evicts the
// first, but its id must still answer (rebuilt from the journal).
func TestReviveAfterEviction(t *testing.T) {
	srv := mustNew(t, Config{StateDir: t.TempDir(), CacheSize: 1})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)

	var first registerResponse
	decode(t, do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 25, 1))), &first)
	do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 25, 2)))

	q := []byte(`{"thetasPi":[0.25],"points":[{"x":0.4,"y":0.6}]}`)
	rec := do(t, h, "POST", "/v1/deployments/"+first.ID+"/query", q)
	if rec.Code != http.StatusOK {
		t.Fatalf("evicted-but-journaled id answered %d, want 200: %s", rec.Code, rec.Body.String())
	}
}

// TestReadyzStarting holds the startup replay open with an injected
// block and asserts /readyz answers 503 "starting" until it finishes.
func TestReadyzStarting(t *testing.T) {
	defer faultinject.Reset()
	gate := make(chan struct{})
	remove := faultinject.Set(faultinject.JournalReplay, func() error {
		<-gate
		return nil
	})
	defer remove()

	srv := mustNew(t, Config{StateDir: t.TempDir()})
	h := srv.Handler()
	rec := do(t, h, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during replay answered %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var ready struct {
		Status string `json:"status"`
	}
	decode(t, rec, &ready)
	if ready.Status != ReadyStarting {
		t.Fatalf("readyz status = %q, want %q", ready.Status, ReadyStarting)
	}
	close(gate)
	waitReadyz(t, h, ReadyOK)
}

// TestQueryDeadline504 gives the query route a short deadline, injects
// latency past it, and asserts the request answers 504 (and is counted
// as one).
func TestQueryDeadline504(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNew(t, Config{QueryTimeout: 20 * time.Millisecond})
	h := srv.Handler()

	var reg registerResponse
	decode(t, do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 30, 4))), &reg)

	remove := faultinject.Set(faultinject.QueryLatency, faultinject.Sleep(60*time.Millisecond))
	defer remove()
	q := []byte(`{"thetasPi":[0.25],"points":[{"x":0.5,"y":0.5}]}`)
	rec := do(t, h, "POST", "/v1/deployments/"+reg.ID+"/query", q)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow query answered %d, want 504: %s", rec.Code, rec.Body.String())
	}
	line := metricLine(t, h, `fvcd_requests_total{code="504",route="query"}`)
	if line == "" {
		line = metricLine(t, h, `fvcd_requests_total{route="query",code="504"}`)
	}
	if !strings.HasSuffix(line, " 1") {
		t.Fatalf("no 504 query request counted: %q", line)
	}
}

// TestTimeoutDefaults pins the Config contract: zero timeouts take the
// documented defaults, negative means "no deadline" and must survive
// defaulting untouched.
func TestTimeoutDefaults(t *testing.T) {
	srv := mustNew(t, Config{})
	if srv.cfg.QueryTimeout != 30*time.Second {
		t.Errorf("default QueryTimeout = %v, want 30s", srv.cfg.QueryTimeout)
	}
	if srv.cfg.SurveyTimeout != 5*time.Minute {
		t.Errorf("default SurveyTimeout = %v, want 5m", srv.cfg.SurveyTimeout)
	}
	srv = mustNew(t, Config{QueryTimeout: -1, SurveyTimeout: -1})
	if srv.cfg.QueryTimeout != -1 || srv.cfg.SurveyTimeout != -1 {
		t.Errorf("negative timeouts rewritten to %v/%v, want both -1",
			srv.cfg.QueryTimeout, srv.cfg.SurveyTimeout)
	}
}

// TestPanicRecoveryZeroAlloc pins that the panic-containment wrapper is
// free on the path that matters: a handler that does not panic pays
// zero allocations for the protection.
func TestPanicRecoveryZeroAlloc(t *testing.T) {
	srv := mustNew(t, Config{})
	sr := &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	req := httptest.NewRequest("POST", "/v1/deployments/x/query", nil)
	noop := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	allocs := testing.AllocsPerRun(200, func() {
		srv.serveRecovering("query", sr, req, noop)
	})
	if allocs != 0 {
		t.Fatalf("non-panicking path allocates %.1f per request, want 0", allocs)
	}
}

// TestRetryAfterJitter pins the Retry-After contract shared by the 429
// and journal-503 paths: a 1-second base jittered ±20%, emitted as
// parseable fractional seconds.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := retryAfter()
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("Retry-After %q is not a number: %v", s, err)
		}
		if v < 0.80 || v > 1.20 {
			t.Fatalf("Retry-After %q outside the ±20%% band around 1s", s)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatal("Retry-After never varied across 200 draws; jitter missing")
	}
}
