package server

// Cluster suite: boots a real 3-replica fvcd cluster on loopback TCP
// with a stateless router in front, and drives the sharding contract
// end to end — ring-routed registrations and patches, async journal
// mirroring, kill -9 of a replica, a replacement warming from a peer
// snapshot, and query/survey answers bit-identical to a single-node
// oracle throughout. The snapshot-fetch failure path runs under
// internal/faultinject, so the degraded-but-serving verdict is
// deterministic.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"fullview/internal/cluster"
	"fullview/internal/faultinject"
)

// testClient disables keep-alives so that killing a replica (closing
// its listener) actually severs it: a pooled connection would keep an
// abandoned server reachable and mask the fault.
var testClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// replica is one live cluster member: its Server, listener, and the
// identity the peers file gives it.
type replica struct {
	name string
	addr string // host:port, stable across kill/restart
	url  string
	dir  string
	srv  *Server
	ln   net.Listener
}

// startReplica boots one member: New (which may warm from a peer),
// then bind and serve. The order matters and mirrors cmd/fvcd — the
// listener binds after New, so a booting cluster's warm probes hit
// closed ports (fast refusal → cold start) instead of hanging in an
// unserved accept queue.
func startReplica(t *testing.T, name, addr, dir string, peerURLs []string) *replica {
	t.Helper()
	srv := mustNew(t, Config{StateDir: dir, PeerURLs: peerURLs})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("replica %s: bind %s: %v", name, addr, err)
	}
	go srv.Serve(ln)
	return &replica{name: name, addr: addr, url: "http://" + addr, dir: dir, srv: srv, ln: ln}
}

// startCluster reserves n loopback ports, then boots n replicas that
// know each other's URLs, plus the Peers document a router needs.
func startCluster(t *testing.T, n int) ([]*replica, *cluster.Peers) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close() // release for the replica to rebind; the port stays ours in practice
	}
	peers := &cluster.Peers{}
	for i, addr := range addrs {
		peers.Members = append(peers.Members,
			cluster.Member{Name: fmt.Sprintf("r%d", i), URL: "http://" + addr})
	}
	reps := make([]*replica, n)
	for i, addr := range addrs {
		var others []string
		for j, a := range addrs {
			if j != i {
				others = append(others, "http://"+a)
			}
		}
		reps[i] = startReplica(t, peers.Members[i].Name, addr, t.TempDir(), others)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.ln.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			r.srv.Shutdown(ctx)
			cancel()
		}
	})
	return reps, peers
}

// httpDo sends one request over real TCP and returns status, body, and
// headers.
func httpDo(t *testing.T, method, url string, body []byte) (int, []byte, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := testClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header
}

// waitURLReadyz polls a live replica's /readyz until it reports want.
func waitURLReadyz(t *testing.T, url, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	last := "unreachable"
	for time.Now().Before(deadline) {
		resp, err := testClient.Get(url + "/readyz")
		if err == nil {
			var body struct {
				Status string `json:"status"`
			}
			err := json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil {
				if body.Status == want {
					return
				}
				last = body.Status
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s/readyz stuck at %q, want %q", url, last, want)
}

// stripElapsed re-marshals a survey answer with its wall-clock field
// removed, so two runs of the same deterministic sweep compare equal.
func stripElapsed(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	delete(m, "elapsedNs")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterKillWarmRestartBitIdentical is the chaos keystone: a
// 3-replica cluster with a router answers every query and survey
// bit-identically to a single-node oracle — before a fault, and after
// the owning replica is kill -9'd (listener torn down, state dir
// lost) and its replacement warms its journal from a peer snapshot.
func TestClusterKillWarmRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-replica TCP cluster")
	}
	reps, peers := startCluster(t, 3)
	for _, r := range reps {
		waitURLReadyz(t, r.url, ReadyOK)
	}
	ring, err := peers.Ring()
	if err != nil {
		t.Fatal(err)
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:       peers,
		RegisterKey: DeploymentIDFromRequest,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	oracleSrv := mustNew(t, Config{StateDir: t.TempDir()})
	oracle := httptest.NewServer(oracleSrv.Handler())
	defer oracle.Close()

	// Register four deployments and patch each, through the router and
	// the oracle in lockstep. Four deployments over three shards makes
	// it overwhelmingly likely every replica owns at least one.
	queryBody := []byte(`{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9},{"x":0.33,"y":0.81}]}`)
	surveyBody := []byte(`{"thetaPi":0.25,"grid":16}`)
	patch := patchBody(t, patchRequest{
		Reaim:  []reaimJSON{{Index: 0, Orient: 2.4}},
		Remove: []int{3},
		Add:    []cameraJSON{{X: 0.8, Y: 0.2, Orient: 1, Radius: 0.15, Aperture: 0.9}},
	})
	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		body := camerasBody(t, testNetwork(t, 12, seed))
		code, data, _ := httpDo(t, "POST", router.URL+"/v1/deployments", body)
		if code != http.StatusCreated {
			t.Fatalf("register via router: %d %s", code, data)
		}
		var reg registerResponse
		if err := json.Unmarshal(data, &reg); err != nil {
			t.Fatal(err)
		}
		ocode, odata, _ := httpDo(t, "POST", oracle.URL+"/v1/deployments", body)
		var oreg registerResponse
		if err := json.Unmarshal(odata, &oreg); err != nil {
			t.Fatal(err)
		}
		if ocode != code || oreg.ID != reg.ID {
			t.Fatalf("router and oracle disagree on registration: %d/%s vs %d/%s", code, reg.ID, ocode, oreg.ID)
		}
		ids = append(ids, reg.ID)

		if code, data, _ := httpDo(t, "PATCH", router.URL+"/v1/deployments/"+reg.ID, patch); code != http.StatusOK {
			t.Fatalf("patch via router: %d %s", code, data)
		}
		if code, data, _ := httpDo(t, "PATCH", oracle.URL+"/v1/deployments/"+reg.ID, patch); code != http.StatusOK {
			t.Fatalf("patch via oracle: %d %s", code, data)
		}
	}

	compareAll := func(stage string) {
		t.Helper()
		for _, id := range ids {
			code, got, _ := httpDo(t, "POST", router.URL+"/v1/deployments/"+id+"/query", queryBody)
			ocode, want, _ := httpDo(t, "POST", oracle.URL+"/v1/deployments/"+id+"/query", queryBody)
			if code != http.StatusOK || ocode != http.StatusOK {
				t.Fatalf("%s: query %s answered %d via router, %d via oracle: %s", stage, id, code, ocode, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: query %s diverged from the oracle:\nrouter: %s\noracle: %s", stage, id, got, want)
			}
			code, got, _ = httpDo(t, "POST", router.URL+"/v1/deployments/"+id+"/survey", surveyBody)
			ocode, want, _ = httpDo(t, "POST", oracle.URL+"/v1/deployments/"+id+"/survey", surveyBody)
			if code != http.StatusOK || ocode != http.StatusOK {
				t.Fatalf("%s: survey %s answered %d via router, %d via oracle", stage, id, code, ocode)
			}
			if g, w := stripElapsed(t, got), stripElapsed(t, want); !bytes.Equal(g, w) {
				t.Errorf("%s: survey %s diverged from the oracle:\nrouter: %s\noracle: %s", stage, id, g, w)
			}
		}
	}
	compareAll("healthy cluster")

	// Let the async mirror drain everywhere, so every replica's journal
	// holds the full cluster history before we lose one.
	for _, r := range reps {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := r.srv.FlushMirror(ctx); err != nil {
			t.Fatalf("FlushMirror on %s: %v", r.name, err)
		}
		cancel()
	}

	// kill -9 the replica that owns the first deployment: tear down its
	// listener and abandon the process state. Its replacement gets a
	// FRESH state dir — the disk is gone too — so everything it knows
	// must come from a peer snapshot.
	victim := 0
	for i, r := range reps {
		if r.name == ring.Owner(ids[0]) {
			victim = i
		}
	}
	reps[victim].ln.Close()

	var peerURLs []string
	for i, r := range reps {
		if i != victim {
			peerURLs = append(peerURLs, r.url)
		}
	}
	reborn := startReplica(t, reps[victim].name, reps[victim].addr, t.TempDir(), peerURLs)
	t.Cleanup(func() {
		reborn.ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		reborn.srv.Shutdown(ctx)
		cancel()
	})
	// ok — not degraded: the peer snapshot must have installed cleanly.
	waitURLReadyz(t, reborn.url, ReadyOK)

	compareAll("after kill -9 and peer warm")

	// The warm was served by a survivor: its snapshot counters moved.
	var snapshots float64
	for i, r := range reps {
		if i == victim {
			continue
		}
		_, metrics, _ := httpDo(t, "GET", r.url+"/metrics", nil)
		for _, line := range strings.Split(string(metrics), "\n") {
			if strings.HasPrefix(line, "fvcd_cluster_snapshots_total") {
				v, _ := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
				snapshots += v
			}
		}
	}
	if snapshots < 1 {
		t.Error("no survivor served a snapshot, yet the replacement warmed")
	}

	// And the router did real routing: its forward counters cover the
	// cluster series the dashboards scrape.
	_, metrics, _ := httpDo(t, "GET", router.URL+"/metrics", nil)
	if !strings.Contains(string(metrics), "fvcd_cluster_forwards_total") {
		t.Error("router /metrics lacks fvcd_cluster_forwards_total")
	}
}

// TestClusterRouterReadyzRollsUpReplicas: the router's /readyz over
// live replicas reports the cluster rollup, and flips to degraded when
// a replica dies.
func TestClusterRouterReadyzRollsUpReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a TCP cluster")
	}
	reps, peers := startCluster(t, 3)
	for _, r := range reps {
		waitURLReadyz(t, r.url, ReadyOK)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:       peers,
		RegisterKey: DeploymentIDFromRequest,
		Client:      testClient,
		// The test kills a replica and re-polls immediately; the probe
		// cache would serve the pre-kill rollup.
		ReadyCacheTTL: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	code, data, _ := httpDo(t, "GET", router.URL+"/readyz", nil)
	var roll struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &roll); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || roll.Status != cluster.ReadyOK {
		t.Fatalf("healthy rollup: %d %s", code, data)
	}

	reps[1].ln.Close()
	code, data, _ = httpDo(t, "GET", router.URL+"/readyz", nil)
	if err := json.Unmarshal(data, &roll); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || roll.Status != cluster.ReadyDegraded {
		t.Fatalf("one-dead rollup: %d %s, want 200 degraded", code, data)
	}
	if !strings.Contains(string(data), `"r1"`) {
		t.Fatalf("rollup does not name the dead shard: %s", data)
	}
}

// TestClusterSnapshotFetchFaultDegradedButServing: when a peer is
// reachable but the snapshot fetch fails (injected), the replica
// starts cold and reports degraded — yet keeps serving registrations
// and queries. Contrast with no-peer-reachable, which is a clean cold
// start (whole-cluster first boot), pinned at the end.
func TestClusterSnapshotFetchFaultDegradedButServing(t *testing.T) {
	defer faultinject.Reset()
	remove := faultinject.Set(faultinject.SnapshotFetch, faultinject.Error(errors.New("snapshot pipe burst")))

	srv := mustNew(t, Config{StateDir: t.TempDir(), PeerURLs: []string{"http://127.0.0.1:1"}})
	h := srv.Handler()
	deadline := time.Now().Add(5 * time.Second)
	var ready struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	for {
		decode(t, do(t, h, "GET", "/readyz", nil), &ready)
		if ready.Status != ReadyStarting {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz stuck at starting")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ready.Status != ReadyDegraded || !strings.Contains(ready.Reason, "peer snapshot warm failed") {
		t.Fatalf("readyz = %+v, want degraded with a warm-failure reason", ready)
	}

	// Degraded-but-serving: registration and query still work.
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 10, 1)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register on degraded replica: %d %s", rec.Code, rec.Body.String())
	}
	var reg registerResponse
	decode(t, rec, &reg)
	q := []byte(`{"thetasPi":[0.25],"points":[{"x":0.5,"y":0.5}]}`)
	if rec := do(t, h, "POST", "/v1/deployments/"+reg.ID+"/query", q); rec.Code != http.StatusOK {
		t.Fatalf("query on degraded replica: %d %s", rec.Code, rec.Body.String())
	}
	remove()

	// No peer reachable at all is NOT degraded: that is what a
	// whole-cluster first boot looks like.
	srv2 := mustNew(t, Config{StateDir: t.TempDir(), PeerURLs: []string{"http://127.0.0.1:1"}})
	waitReadyz(t, srv2.Handler(), ReadyOK)
}

// TestClusterMirrorAppliesAndInvalidates drives POST /v1/internal/
// mirror directly: mirrored registrations and mutations land in the
// journal, a cached entry for a mirrored id is invalidated (the next
// read sees the mutated state), and a mutation for an unknown id is
// answered 422.
func TestClusterMirrorAppliesAndInvalidates(t *testing.T) {
	srv := mustNew(t, Config{StateDir: t.TempDir(), PeerURLs: []string{"http://127.0.0.1:1"}})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)

	// Register locally, query once to cache it.
	var reg registerResponse
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 10, 3)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)
	q := []byte(`{"thetasPi":[0.25],"points":[{"x":0.5,"y":0.5}]}`)
	before := do(t, h, "POST", "/v1/deployments/"+reg.ID+"/query", q).Body.Bytes()

	// A peer owning this deployment applied a patch and mirrors the
	// mutation record here.
	batch, err := json.Marshal(map[string]any{"records": []map[string]any{{
		"id": reg.ID, "op": "remove", "remove": []int{0},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, h, "POST", "/v1/internal/mirror", batch); rec.Code != http.StatusNoContent {
		t.Fatalf("mirror: %d %s", rec.Code, rec.Body.String())
	}

	// The cached entry was invalidated: the same query now answers for
	// the mutated deployment (version bumped, possibly different
	// verdicts) instead of the stale cached state.
	rec = do(t, h, "POST", "/v1/deployments/"+reg.ID+"/query", q)
	if rec.Code != http.StatusOK {
		t.Fatalf("query after mirror: %d %s", rec.Code, rec.Body.String())
	}
	var resp queryResponse
	decode(t, rec, &resp)
	if resp.Version != 1 {
		t.Fatalf("version after mirrored mutation = %d, want 1", resp.Version)
	}
	if bytes.Equal(rec.Body.Bytes(), before) {
		t.Fatal("query answer unchanged after mirrored mutation — stale cache served")
	}

	// A mutation for an id this replica never saw is a 422, not a 5xx.
	batch, _ = json.Marshal(map[string]any{"records": []map[string]any{{
		"id": "feedfacefeedface", "op": "remove", "remove": []int{0},
	}}})
	if rec := do(t, h, "POST", "/v1/internal/mirror", batch); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("mirror of unknown id: %d, want 422", rec.Code)
	}
}

// TestRetryableAnswersCarryRetryAfter pins the cluster-wide contract
// the router and clients rely on: EVERY retryable 429/503 — not-durable
// registration 503s included — carries the jittered fractional-seconds
// Retry-After.
func TestRetryableAnswersCarryRetryAfter(t *testing.T) {
	defer faultinject.Reset()
	srv := mustNew(t, Config{StateDir: t.TempDir()})
	h := srv.Handler()
	waitReadyz(t, h, ReadyOK)

	assertRetryAfter := func(rec *httptest.ResponseRecorder, what string) {
		t.Helper()
		ra := rec.Header().Get("Retry-After")
		if ra == "" {
			t.Fatalf("%s (%d) carries no Retry-After", what, rec.Code)
		}
		v, err := strconv.ParseFloat(ra, 64)
		if err != nil || v < 0.80 || v > 1.20 {
			t.Fatalf("%s Retry-After %q outside the 1s±20%% fractional-seconds contract", what, ra)
		}
	}

	// errNotDurable 503 on register.
	remove := faultinject.Set(faultinject.JournalWrite, faultinject.Error(errors.New("disk on fire")))
	rec := do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 10, 5)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("register with failing journal: %d", rec.Code)
	}
	assertRetryAfter(rec, "not-durable register 503")
	remove()

	// errNotDurable 503 on PATCH.
	var reg registerResponse
	rec = do(t, h, "POST", "/v1/deployments", camerasBody(t, testNetwork(t, 10, 6)))
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}
	decode(t, rec, &reg)
	remove = faultinject.Set(faultinject.JournalWrite, faultinject.Error(errors.New("disk on fire")))
	rec = do(t, h, "PATCH", "/v1/deployments/"+reg.ID, patchBody(t, patchRequest{Remove: []int{0}}))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("patch with failing journal: %d", rec.Code)
	}
	assertRetryAfter(rec, "not-durable patch 503")
	remove()

	// Starting 503 on /readyz during replay.
	gate := make(chan struct{})
	remove = faultinject.Set(faultinject.JournalReplay, func() error {
		<-gate
		return nil
	})
	srv2 := mustNew(t, Config{StateDir: srv.cfg.StateDir})
	rec = do(t, srv2.Handler(), "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during replay: %d", rec.Code)
	}
	assertRetryAfter(rec, "readyz starting 503")
	close(gate)
	remove()
	waitReadyz(t, srv2.Handler(), ReadyOK)
}

// TestDeploymentIDFromRequest: the router's placement key is the exact
// fingerprint the shard assigns, for both registration forms; garbage
// is rejected with the handler's strictness.
func TestDeploymentIDFromRequest(t *testing.T) {
	srv := mustNew(t, Config{})
	h := srv.Handler()

	for _, body := range [][]byte{
		camerasBody(t, testNetwork(t, 15, 2)),
		[]byte(`{"profile":"` + testProfile + `","n":20,"seed":9}`),
	} {
		key, err := DeploymentIDFromRequest(body)
		if err != nil {
			t.Fatalf("DeploymentIDFromRequest: %v", err)
		}
		var reg registerResponse
		rec := do(t, h, "POST", "/v1/deployments", body)
		if rec.Code != http.StatusCreated {
			t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
		}
		decode(t, rec, &reg)
		if reg.ID != key {
			t.Fatalf("placement key %s, shard assigned %s", key, reg.ID)
		}
	}

	for _, bad := range []string{
		`{"nope":1}`,
		`{"cameras":[]} trailing`,
		`{"profile":"not-a-profile","n":5}`,
	} {
		if _, err := DeploymentIDFromRequest([]byte(bad)); err == nil {
			t.Errorf("DeploymentIDFromRequest accepted %s", bad)
		}
	}
}
