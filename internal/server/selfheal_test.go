package server

// Self-healing chaos suite: drives the anti-entropy reconciler and the
// router's failover reads against real faults — sustained mirror loss
// injected at 100%, then a partitioned owner — and holds the cluster
// to the bit-identical-with-oracle standard throughout. Deterministic
// on purpose: mirror loss comes from the faultinject.MirrorDrop point,
// repair from explicitly driven AntiEntropyRound calls (no timing
// races on a background loop).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fullview/internal/cluster"
	"fullview/internal/faultinject"
)

// flushAll drains every replica's mirror queues.
func flushAll(t *testing.T, reps []*replica) {
	t.Helper()
	for _, r := range reps {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := r.srv.FlushMirror(ctx); err != nil {
			t.Fatalf("FlushMirror on %s: %v", r.name, err)
		}
		cancel()
	}
}

// digestBody fetches a replica's raw digest-endpoint answer for
// byte-level comparison (Go's map marshalling sorts keys, so two
// replicas holding the same state answer identical bytes).
func digestBody(t *testing.T, url string) []byte {
	t.Helper()
	code, data, _ := httpDo(t, "GET", url+cluster.DigestPath, nil)
	if code != http.StatusOK {
		t.Fatalf("digest from %s: %d %s", url, code, data)
	}
	return data
}

// metricValue sums a metric's series values in a /metrics dump.
func urlMetricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	_, metrics, _ := httpDo(t, "GET", url+"/metrics", nil)
	total := 0.0
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, name) {
			var v float64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%f", &v)
			total += v
		}
	}
	return total
}

// TestClusterSelfHealsAfterSustainedMirrorLoss is the anti-entropy
// half of the acceptance contract: with MirrorDrop injected at 100%,
// registrations and mutations journal only on the replica that took
// them — every mirror batch exhausts its retries and drops. After the
// fault heals, two anti-entropy rounds converge all three replicas to
// byte-identical digest maps, and every replica answers queries for
// the repaired deployments bit-identically to a single-node oracle.
func TestClusterSelfHealsAfterSustainedMirrorLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-replica TCP cluster")
	}
	defer faultinject.Reset()
	reps, _ := startCluster(t, 3)
	for _, r := range reps {
		waitURLReadyz(t, r.url, ReadyOK)
	}
	oracleSrv := mustNew(t, Config{StateDir: t.TempDir()})
	oracle := httptest.NewServer(oracleSrv.Handler())
	defer oracle.Close()

	// 100% mirror loss: every post attempt fails before reaching the
	// wire, exactly like a severed network.
	undo := faultinject.Set(faultinject.MirrorDrop, faultinject.Error(errors.New("chaos: mirror severed")))

	patch := patchBody(t, patchRequest{
		Reaim:  []reaimJSON{{Index: 0, Orient: 2.4}},
		Remove: []int{3},
		Add:    []cameraJSON{{X: 0.8, Y: 0.2, Orient: 1, Radius: 0.15, Aperture: 0.9}},
	})
	var ids []string
	for seed := uint64(1); seed <= 2; seed++ {
		body := camerasBody(t, testNetwork(t, 12, seed))
		code, data, _ := httpDo(t, "POST", reps[0].url+"/v1/deployments", body)
		if code != http.StatusCreated {
			t.Fatalf("register on r0: %d %s", code, data)
		}
		var reg registerResponse
		if err := json.Unmarshal(data, &reg); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, reg.ID)
		if code, data, _ := httpDo(t, "PATCH", reps[0].url+"/v1/deployments/"+reg.ID, patch); code != http.StatusOK {
			t.Fatalf("patch on r0: %d %s", code, data)
		}
		if code, _, _ := httpDo(t, "POST", oracle.URL+"/v1/deployments", body); code != http.StatusCreated {
			t.Fatalf("oracle register: %d", code)
		}
		if code, _, _ := httpDo(t, "PATCH", oracle.URL+"/v1/deployments/"+ids[len(ids)-1], patch); code != http.StatusOK {
			t.Fatalf("oracle patch: %d", code)
		}
	}

	// Drain the queues while the fault is still armed, so every batch
	// exhausts its bounded retries and is counted dropped — none may
	// linger and deliver late after the heal.
	flushAll(t, reps)
	undo()

	if retries := urlMetricValue(t, reps[0].url, "fvcd_mirror_retries_total"); retries == 0 {
		t.Error("mirror retries counter never moved under sustained loss")
	}
	if dropped := urlMetricValue(t, reps[0].url, "fvcd_cluster_mirror_dropped_total"); dropped == 0 {
		t.Error("mirror drop counter never moved under sustained loss")
	}
	if bytes.Equal(digestBody(t, reps[0].url), digestBody(t, reps[1].url)) {
		t.Fatal("test premise broken: replicas agree despite 100% mirror loss")
	}

	// Heal within two anti-entropy rounds per replica.
	for round := 0; round < 2; round++ {
		for _, r := range reps {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			r.srv.AntiEntropyRound(ctx)
			cancel()
		}
	}
	want := digestBody(t, reps[0].url)
	for _, r := range reps[1:] {
		if got := digestBody(t, r.url); !bytes.Equal(got, want) {
			t.Fatalf("digests diverged after two anti-entropy rounds:\n%s: %s\n%s: %s",
				reps[0].name, want, r.name, got)
		}
	}

	// The repaired copies must not just hash alike — they must answer
	// alike. Every replica, every deployment, bit-identical to the
	// oracle.
	queryBody := []byte(`{"thetasPi":[0.2,0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.1,"y":0.9},{"x":0.33,"y":0.81}]}`)
	for _, id := range ids {
		_, want, _ := httpDo(t, "POST", oracle.URL+"/v1/deployments/"+id+"/query", queryBody)
		for _, r := range reps {
			code, got, _ := httpDo(t, "POST", r.url+"/v1/deployments/"+id+"/query", queryBody)
			if code != http.StatusOK {
				t.Fatalf("query %s on %s after repair: %d %s", id, r.name, code, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("query %s on %s diverged from the oracle after repair:\n%s\nvs\n%s", id, r.name, got, want)
			}
		}
	}
}

// TestClusterFailoverReadsDuringOwnerDowntime is the failover half of
// the acceptance contract: with the owning replica partitioned away,
// reads through the router are served by a ring successor from its
// mirrored copy — bit-identical to the single-node oracle — while a
// write to the same deployment answers 503 + Retry-After (writes stay
// owner-only), and the router exports its breaker states.
func TestClusterFailoverReadsDuringOwnerDowntime(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-replica TCP cluster")
	}
	reps, peers := startCluster(t, 3)
	for _, r := range reps {
		waitURLReadyz(t, r.url, ReadyOK)
	}
	ring, err := peers.Ring()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Peers:       peers,
		RegisterKey: DeploymentIDFromRequest,
		Client:      testClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	oracleSrv := mustNew(t, Config{StateDir: t.TempDir()})
	oracle := httptest.NewServer(oracleSrv.Handler())
	defer oracle.Close()

	body := camerasBody(t, testNetwork(t, 12, 7))
	code, data, _ := httpDo(t, "POST", router.URL+"/v1/deployments", body)
	if code != http.StatusCreated {
		t.Fatalf("register via router: %d %s", code, data)
	}
	var reg registerResponse
	if err := json.Unmarshal(data, &reg); err != nil {
		t.Fatal(err)
	}
	patch := patchBody(t, patchRequest{Reaim: []reaimJSON{{Index: 1, Orient: 0.9}}})
	if code, data, _ := httpDo(t, "PATCH", router.URL+"/v1/deployments/"+reg.ID, patch); code != http.StatusOK {
		t.Fatalf("patch via router: %d %s", code, data)
	}
	httpDo(t, "POST", oracle.URL+"/v1/deployments", body)
	if code, _, _ := httpDo(t, "PATCH", oracle.URL+"/v1/deployments/"+reg.ID, patch); code != http.StatusOK {
		t.Fatalf("oracle patch: %d", code)
	}
	// Every survivor needs the mirrored copy before the owner dies.
	flushAll(t, reps)

	// Partition the owner: listener gone, no replacement this time.
	for _, r := range reps {
		if r.name == ring.Owner(reg.ID) {
			r.ln.Close()
		}
	}

	queryBody := []byte(`{"thetasPi":[0.25,0.5],"points":[{"x":0.5,"y":0.5},{"x":0.2,"y":0.7}]}`)
	surveyBody := []byte(`{"thetaPi":0.25,"grid":16}`)
	_, want, _ := httpDo(t, "POST", oracle.URL+"/v1/deployments/"+reg.ID+"/query", queryBody)
	code, got, _ := httpDo(t, "POST", router.URL+"/v1/deployments/"+reg.ID+"/query", queryBody)
	if code != http.StatusOK {
		t.Fatalf("query with dead owner: %d %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("failover query diverged from the oracle:\n%s\nvs\n%s", got, want)
	}
	code, got, _ = httpDo(t, "POST", router.URL+"/v1/deployments/"+reg.ID+"/survey", surveyBody)
	_, owant, _ := httpDo(t, "POST", oracle.URL+"/v1/deployments/"+reg.ID+"/survey", surveyBody)
	if code != http.StatusOK {
		t.Fatalf("survey with dead owner: %d %s", code, got)
	}
	if g, w := stripElapsed(t, got), stripElapsed(t, owant); !bytes.Equal(g, w) {
		t.Errorf("failover survey diverged from the oracle:\n%s\nvs\n%s", g, w)
	}

	// Writes do not fail over: owner-only, shed with Retry-After.
	code, data, hdr := httpDo(t, "PATCH", router.URL+"/v1/deployments/"+reg.ID, patch)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("write with dead owner answered %d %s, want 503", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("write-rejection 503 carries no Retry-After")
	}

	// The dashboards see both mechanisms: failed-over reads counted,
	// breaker states exported.
	_, metrics, _ := httpDo(t, "GET", router.URL+"/metrics", nil)
	for _, series := range []string{"fvcd_cluster_failover_reads_total", "fvcd_breaker_state"} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("router /metrics lacks %s", series)
		}
	}
	if v := urlMetricValue(t, router.URL, "fvcd_cluster_failover_reads_total"); v < 2 {
		t.Errorf("failover reads counter %v, want >= 2 (query + survey)", v)
	}
}
