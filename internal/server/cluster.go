package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fullview/internal/cluster"
	"fullview/internal/depcache"
	"fullview/internal/depjournal"
	"fullview/internal/faultinject"
	"fullview/internal/telemetry"
)

// Cluster-internal routes. They sit off the admission gate — replica
// traffic must not compete with client compute for slots — and exist
// only on clustered servers (Config.PeerURLs non-empty). The paths are
// the cluster package's constants, so the anti-entropy reconciler and
// the handlers it talks to cannot drift apart.
const (
	snapshotRoute = "GET " + cluster.SnapshotPath
	mirrorRoute   = "POST /v1/internal/mirror"
	digestRoute   = "GET " + cluster.DigestPath
)

// DeploymentIDFromRequest computes the deployment id — the network's
// content fingerprint — that a POST /v1/deployments body would be
// assigned, without registering anything. It runs the exact
// registration build path, so the id always matches what the owning
// shard will answer; the cluster router uses it to place registrations
// on the ring. The body is validated as strictly as the registration
// handler validates it (camera caps use the default configuration).
func DeploymentIDFromRequest(body []byte) (string, error) {
	var req registerRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", fmt.Errorf("malformed registration: %v", err)
	}
	if dec.More() {
		return "", errors.New("trailing data after JSON body")
	}
	shim := &Server{cfg: Config{}.withDefaults()}
	net, err := shim.buildNetwork(&req)
	if err != nil {
		return "", err
	}
	return depcache.Fingerprint(net), nil
}

// mirrorBatch is the wire body of POST /v1/internal/mirror: journal
// records — registrations and mutations, in append order — that a peer
// replica appended and is replicating here.
type mirrorBatch struct {
	Records []depjournal.Record `json:"records"`
}

// clusterState is the per-server cluster machinery: the async journal
// mirror (sender side) and the cluster metric series. Present only on
// clustered servers.
//
// The cluster's data model is "shared-nothing compute, mirrored
// metadata": the spatial indexes and the coverage compute are sharded
// by the consistent-hash ring, but the deployment journal — tiny
// compared to the indexes it describes — is asynchronously replicated
// to every peer. That one decision buys the whole failure story: any
// replica can warm a dead peer's replacement from its own journal
// (GET /v1/internal/snapshot), a mis-routed request still answers
// correctly (the journal revives any deployment anywhere), and
// membership changes need no data-migration protocol.
type clusterState struct {
	peers  []string // normalized peer base URLs
	client *http.Client

	snapshotBytes *telemetry.Counter
	snapshots     *telemetry.Counter
	mirrorSent    *telemetry.Counter
	mirrorRetries *telemetry.Counter
	mirrorDropped *telemetry.Counter
	mirrorApplied *telemetry.Counter
	mirrorStale   *telemetry.Counter

	// antientropy is the periodic digest reconciler; present whenever
	// the server is clustered with a durable journal (its loop only
	// runs when Config.AntiEntropyInterval is set, but Round stays
	// drivable for tests and tools).
	antientropy *cluster.AntiEntropy

	// queues holds one FIFO per peer, so mirrored records reach each
	// peer in local append order (per-deployment order is what
	// correctness needs, and each deployment has exactly one appending
	// owner). pending counts enqueued batches not yet posted or
	// dropped, for FlushMirror.
	queues  map[string]chan []depjournal.Record
	pending atomic.Int64
	done    chan struct{}
	wg      sync.WaitGroup
}

// mirrorQueueDepth bounds each peer's unsent mirror queue. A peer that
// stays unreachable long enough to overflow it loses those records
// from the mirror stream — and recovers them wholesale the next time
// any replica warms from a snapshot, which is why overflow drops
// (counted, logged) instead of blocking the write path.
const mirrorQueueDepth = 256

// newClusterState wires the cluster machinery onto s. Called from New
// before openState, so the snapshot warm path can use the HTTP client.
func newClusterState(s *Server) *clusterState {
	c := &clusterState{
		peers:  make([]string, 0, len(s.cfg.PeerURLs)),
		client: &http.Client{Timeout: 30 * time.Second},
		snapshotBytes: s.m.reg.Counter("fvcd_cluster_snapshot_bytes_total",
			"Bytes of journal snapshot streamed to warming peers."),
		snapshots: s.m.reg.Counter("fvcd_cluster_snapshots_total",
			"Journal snapshots served to warming peers."),
		mirrorSent: s.m.reg.Counter("fvcd_cluster_mirror_sent_total",
			"Journal record batches mirrored to a peer successfully."),
		mirrorRetries: s.m.reg.Counter("fvcd_mirror_retries_total",
			"Mirror post attempts retried after a transient failure, before the batch was sent or dropped."),
		mirrorDropped: s.m.reg.Counter("fvcd_cluster_mirror_dropped_total",
			"Journal record batches dropped from the mirror stream (queue overflow or peer unreachable past retries)."),
		mirrorApplied: s.m.reg.Counter("fvcd_cluster_mirror_applied_total",
			"Journal records applied from peer mirror batches."),
		mirrorStale: s.m.reg.Counter("fvcd_cluster_mirror_stale_total",
			"Mirrored records skipped because the local copy already held their version (duplicate delivery)."),
		queues: make(map[string]chan []depjournal.Record),
		done:   make(chan struct{}),
	}
	for _, u := range s.cfg.PeerURLs {
		u = strings.TrimRight(u, "/")
		if u == "" {
			continue
		}
		c.peers = append(c.peers, u)
		q := make(chan []depjournal.Record, mirrorQueueDepth)
		c.queues[u] = q
		c.wg.Add(1)
		go c.mirrorWorker(s, u, q)
	}
	return c
}

// mirrorWorker drains one peer's queue, posting each batch with
// bounded retries. Exits on close; batches still queued at shutdown
// are abandoned (the peer heals from a snapshot).
func (c *clusterState) mirrorWorker(s *Server, peer string, q chan []depjournal.Record) {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case batch := <-q:
			if c.postMirror(s, peer, batch) {
				c.mirrorSent.Inc()
			} else {
				c.mirrorDropped.Inc()
				s.logf("cluster: mirror to %s dropped %d records (peer unreachable past retries)", peer, len(batch))
			}
			c.pending.Add(-1)
		}
	}
}

// Mirror retry policy: each batch gets mirrorAttempts tries, with
// doubling backoff from mirrorBackoffBase capped at mirrorBackoffCap
// (25ms, 50ms, 100ms… never past 400ms). Short and bounded on purpose:
// the worker is serial per peer, so time spent retrying one batch is
// head-of-line latency for every batch behind it, and anything the
// retries cannot save is the anti-entropy reconciler's job anyway.
// These bounds ride out a peer restart or a dropped connection — the
// common transient blips — without turning the queue into a stall.
const (
	mirrorAttempts    = 4
	mirrorBackoffBase = 25 * time.Millisecond
	mirrorBackoffCap  = 400 * time.Millisecond
)

// postMirror sends one batch to one peer, retrying transport errors
// and retryable statuses per the policy above. Retried attempts count
// in fvcd_mirror_retries_total; only exhausting them makes the batch a
// drop. The faultinject.MirrorDrop point fails individual attempts,
// exactly like a transport error would.
func (c *clusterState) postMirror(s *Server, peer string, batch []depjournal.Record) bool {
	body, err := json.Marshal(mirrorBatch{Records: batch})
	if err != nil {
		s.logf("cluster: encode mirror batch: %v", err)
		return false
	}
	backoff := mirrorBackoffBase
	for attempt := 0; attempt < mirrorAttempts; attempt++ {
		if attempt > 0 {
			c.mirrorRetries.Inc()
			select {
			case <-c.done:
				return false
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > mirrorBackoffCap {
				backoff = mirrorBackoffCap
			}
		}
		if err := faultinject.Fire(faultinject.MirrorDrop); err != nil {
			continue
		}
		req, err := http.NewRequest(http.MethodPost, peer+"/v1/internal/mirror", bytes.NewReader(body))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode < 300 {
			return true
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode < 500 {
			// A non-retryable answer (e.g. the peer rejects the batch as
			// malformed) will not improve with repetition.
			return false
		}
	}
	return false
}

// close stops the mirror workers. Called from Shutdown after the HTTP
// drain, so no handler is still enqueueing.
func (c *clusterState) close() {
	close(c.done)
	c.wg.Wait()
}

// mirrorRecords fans a freshly appended batch out to every peer queue.
// Non-blocking by design: the client's request was already durable
// locally when this runs, and a slow peer must not add latency (or
// failure) to it. An overflowing queue drops the batch for that peer —
// counted — and the peer heals from a snapshot later.
func (s *Server) mirrorRecords(recs []depjournal.Record) {
	c := s.cluster
	if c == nil || len(recs) == 0 {
		return
	}
	for _, q := range c.queues {
		c.pending.Add(1)
		select {
		case q <- recs:
		default:
			c.pending.Add(-1)
			c.mirrorDropped.Inc()
		}
	}
}

// FlushMirror blocks until every enqueued mirror batch has been posted
// or dropped, or ctx expires. A deterministic synchronization point
// for tests and drain scripts; production code never needs it (the
// mirror is asynchronous by contract).
func (s *Server) FlushMirror(ctx context.Context) error {
	c := s.cluster
	if c == nil {
		return nil
	}
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if c.pending.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// handleSnapshot streams the local journal's compacted snapshot — the
// byte image a local Compact would write — to a warming peer, or, with
// ?id=, the single-deployment image the anti-entropy reconciler
// fetches to repair one divergent deployment (404 when the id is not
// journaled here). Appends are not paused (depjournal copies under
// lock and encodes outside it); records landing mid-stream are simply
// not in this snapshot and reach the peer through the mirror instead.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusNotFound, "no durable journal on this replica")
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		// Per-id 404s must be answered before any body bytes go out, and
		// SnapshotID guarantees it writes nothing on an unknown id.
		w.Header().Set("Content-Type", "application/x-ndjson")
		n, err := s.journal.SnapshotID(w, id)
		if errors.Is(err, depjournal.ErrNotFound) {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		s.cluster.snapshotBytes.Add(n)
		if err != nil {
			s.logf("cluster: per-id snapshot of %s failed after %d bytes: %v", id, n, err)
			panic(http.ErrAbortHandler)
		}
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	n, err := s.journal.Snapshot(w)
	s.cluster.snapshotBytes.Add(n)
	s.cluster.snapshots.Inc()
	if err != nil {
		// Headers are gone; all we can do is cut the stream so the peer
		// sees a truncated (and therefore invalid) snapshot.
		s.logf("cluster: snapshot stream failed after %d bytes: %v", n, err)
		panic(http.ErrAbortHandler)
	}
	s.logf("cluster: served journal snapshot (%d bytes) to %s", n, r.RemoteAddr)
}

// handleDigest answers the replica's per-deployment digest map — the
// anti-entropy comparison input. Cheap enough to serve on demand
// (sha256 over journal records already in memory), and always computed
// fresh: a stale digest would mask exactly the divergence the endpoint
// exists to reveal.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusNotFound, "no durable journal on this replica")
		return
	}
	writeJSON(w, http.StatusOK, s.journal.Digests())
}

// handleMirror applies a peer's mirror batch to the local journal:
// registrations append (idempotent on known ids), mutations append to
// their deployment's history. Any locally cached entry for a mirrored
// id is invalidated — its state advanced on the owning shard, so the
// next local use must rebuild from the journal. A journal write
// failure answers 503 + Retry-After (the peer retries); a mutation
// whose registration never arrived here is answered 422 and dropped —
// retrying cannot fix it, and the gap heals at the next snapshot warm
// or anti-entropy round.
//
// Mutation records arrive stamped with the logical version they
// produce (applyPatch stamps them), which makes the apply idempotent
// and gap-safe against the anti-entropy repair path racing the mirror:
// a record at or below the local version is a duplicate (an AE pull
// already covered it, or the peer re-sent) and is skipped; a record
// more than one ahead means intervening mutations were lost here, and
// appending it would fabricate a history the owner never had — it is
// skipped too, and the reconciler pulls the authoritative copy
// instead. Unstamped records (version 0: a pre-stamping peer) apply
// unconditionally, the old behaviour.
func (s *Server) handleMirror(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeError(w, http.StatusNotFound, "no durable journal on this replica")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var batch mirrorBatch
	if err := decodeBody(r, &batch); err != nil {
		writeDecodeError(w, err)
		return
	}
	applied := 0
	for _, rec := range batch.Records {
		var err error
		if rec.Op == "" {
			err = s.journal.Append(rec)
		} else if v, ok := s.journal.Version(rec.ID); ok && rec.BaseVersion != 0 && rec.BaseVersion != v+1 {
			if rec.BaseVersion <= v {
				s.cluster.mirrorStale.Inc()
			} else {
				s.logf("cluster: mirror gap for %s: record is version %d, local is %d (anti-entropy will repair)",
					rec.ID, rec.BaseVersion, v)
			}
			continue
		} else {
			err = s.journal.AppendMutations(rec.ID, []depjournal.Record{rec})
		}
		switch {
		case err == nil:
			applied++
			s.cache.Invalidate(rec.ID)
		case errors.Is(err, depjournal.ErrUnknownID):
			s.logf("cluster: mirror skipped %s mutation for unknown id %s", rec.Op, rec.ID)
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("mutation for id %s this replica never saw registered", rec.ID))
			s.cluster.mirrorApplied.Add(int64(applied))
			return
		default:
			s.setJournalErr(err)
			writeRetryable(w, http.StatusServiceUnavailable, "journal write failed: "+err.Error())
			s.cluster.mirrorApplied.Add(int64(applied))
			return
		}
	}
	s.setJournalErr(nil)
	s.cluster.mirrorApplied.Add(int64(applied))
	w.WriteHeader(http.StatusNoContent)
}

// maybeWarmFromPeer fills an absent (or empty) journal file from a
// peer snapshot before the journal opens, so a replaced replica starts
// with the cluster's full deployment history instead of an empty
// registry. Failure modes, by design:
//
//   - local journal already has content  → no fetch (local truth wins)
//   - no peer reachable at all           → cold start, NOT degraded
//     (the signature of a whole-cluster first boot)
//   - a peer answered but the fetch or its snapshot was bad — or the
//     faultinject.SnapshotFetch point fired — → cold start, readiness
//     DEGRADED (still serving; re-registrations and mirrors heal it,
//     a restart retries the warm)
func (s *Server) maybeWarmFromPeer(path string) {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return
	}
	if err := faultinject.Fire(faultinject.SnapshotFetch); err != nil {
		s.setWarmErr(fmt.Errorf("injected fault: %w", err))
		s.logf("cluster: peer warm failed (injected), starting cold: %v", err)
		return
	}
	anyResponded := false
	var lastErr error
	for _, peer := range s.cluster.peers {
		resp, err := s.cluster.client.Get(peer + "/v1/internal/snapshot")
		if err != nil {
			lastErr = err
			continue
		}
		anyResponded = true
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("read snapshot from %s: %w", peer, err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("peer %s answered %d to snapshot fetch", peer, resp.StatusCode)
			continue
		}
		if err := installSnapshot(path, data); err != nil {
			lastErr = fmt.Errorf("snapshot from %s: %w", peer, err)
			continue
		}
		s.logf("cluster: warmed journal from %s (%d bytes)", peer, len(data))
		return
	}
	if !anyResponded {
		s.logf("cluster: no peer reachable for journal warm, starting cold (first boot?): %v", lastErr)
		return
	}
	s.setWarmErr(lastErr)
	s.logf("cluster: peer warm failed, starting cold and degraded: %v", lastErr)
}

// installSnapshot validates a fetched snapshot by fully replaying it,
// then installs it at the journal path via temp + rename. Validation
// first: a corrupt snapshot must never brick the boot — depjournal.Open
// refuses interior corruption, and refusing here means we fall back to
// a cold start instead.
func installSnapshot(path string, data []byte) error {
	if len(data) == 0 {
		return errors.New("empty snapshot")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".warm*")
	if err != nil {
		return fmt.Errorf("create temp: %w", err)
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("close temp: %w", err)
	}
	j, err := depjournal.Open(name, depjournal.Options{CompactBytes: -1})
	if err != nil {
		return fmt.Errorf("snapshot does not replay: %w", err)
	}
	j.Close()
	if err := os.Rename(name, path); err != nil {
		return fmt.Errorf("install: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// setWarmErr records a failed peer warm for /readyz.
func (s *Server) setWarmErr(err error) {
	s.stateMu.Lock()
	s.warmErr = err
	s.stateMu.Unlock()
}

// antiEntropyStore adapts the server to cluster.AntiEntropyStore: the
// digest side reads the journal, the apply side reinstalls the fetched
// records and invalidates any cached entry so the next use rebuilds
// from the repaired journal. Applies deliberately do NOT re-mirror —
// every replica reconciles for itself, so echoing a repair back into
// the mirror stream would only add duplicate deliveries.
type antiEntropyStore struct{ s *Server }

func (a antiEntropyStore) Digests() map[string]depjournal.DigestInfo {
	return a.s.journal.Digests()
}

func (a antiEntropyStore) Apply(id string, recs []depjournal.Record) error {
	if err := a.s.journal.Reinstall(id, recs); err != nil {
		return err
	}
	a.s.cache.Invalidate(id)
	return nil
}

// newAntiEntropy builds the reconciler once the journal is open.
// Called from New on clustered servers with a durable journal; the
// periodic loop starts only when an interval was configured, but Round
// stays drivable either way.
func (s *Server) newAntiEntropy() {
	ae, err := cluster.NewAntiEntropy(cluster.AntiEntropyConfig{
		Peers:    s.cluster.peers,
		Local:    antiEntropyStore{s},
		Interval: s.cfg.AntiEntropyInterval,
		Client:   s.cluster.client,
		Registry: s.m.reg,
		Logger:   s.cfg.Logger,
	})
	if err != nil {
		// Unreachable by construction (peers and store are non-nil when
		// this runs), but a reconciler must never take the server down.
		s.logf("cluster: anti-entropy disabled: %v", err)
		return
	}
	s.cluster.antientropy = ae
	ae.Start()
}

// AntiEntropyRound runs one reconciliation pass immediately and
// returns the number of deployments repaired. Deterministic driver for
// tests and operational tooling; returns 0 on non-clustered servers.
func (s *Server) AntiEntropyRound(ctx context.Context) int {
	if s.cluster == nil || s.cluster.antientropy == nil {
		return 0
	}
	return s.cluster.antientropy.Round(ctx)
}
