package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/experiment"
	"fullview/internal/faultinject"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

const testProfile = "0.3:0.2:0.4,0.7:0.1:0.5"

func testNet(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	profile, err := sensor.ParseProfile(testProfile)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// realExec builds the same banded executor the server wires in: one
// checker per θ slot, one grid row per band.
func realExec(t *testing.T, net *sensor.Network) Exec {
	t.Helper()
	return func(spec Spec) (BandRunner, error) {
		points, err := deploy.GridPoints(geom.UnitTorus, spec.Grid)
		if err != nil {
			return nil, err
		}
		checkers := make([]*core.Checker, spec.Slots())
		for i, tp := range spec.ThetasPi {
			c, err := core.NewChecker(net, tp*math.Pi)
			if err != nil {
				return nil, err
			}
			checkers[i] = c
		}
		return func(ctx context.Context, band int) (core.RegionStats, error) {
			row := spec.Row(band)
			pts := points[row*spec.Grid : (row+1)*spec.Grid]
			return checkers[spec.Slot(band)].SurveyRegionContext(ctx, pts, max(spec.Workers, 1))
		}, nil
	}
}

// wholeGrid computes the uninterrupted reference result for a spec.
func wholeGrid(t *testing.T, net *sensor.Network, spec Spec) []core.RegionStats {
	t.Helper()
	points, err := deploy.GridPoints(geom.UnitTorus, spec.Grid)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]core.RegionStats, spec.Slots())
	for i, tp := range spec.ThetasPi {
		c, err := core.NewChecker(net, tp*math.Pi)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c.SurveyRegion(points)
	}
	return out
}

func quietConfig(cfg Config) Config {
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	return cfg
}

func newManager(t *testing.T, cfg Config, exec Exec) *Manager {
	t.Helper()
	m, err := New(quietConfig(cfg), exec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func surveySpec(grid int) Spec {
	return Spec{Kind: KindSurvey, Deployment: "dep", ThetasPi: []float64{0.25}, Grid: grid}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitTerminal(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	var snap Snapshot
	waitFor(t, "job "+id+" terminal", func() bool {
		var err error
		snap, err = m.Get(id)
		if err != nil {
			t.Fatalf("get %s: %v", id, err)
		}
		return snap.State.Terminal()
	})
	return snap
}

func TestSurveyJobMatchesLibrary(t *testing.T) {
	net := testNet(t, 150, 7)
	m := newManager(t, Config{}, realExec(t, net))
	m.Start()
	spec := surveySpec(12)
	snap, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bands != 12 || snap.State != StateQueued && snap.State != StateRunning && snap.State != StateDone {
		t.Fatalf("odd initial snapshot: %+v", snap)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", final.State, final.Err)
	}
	want := wholeGrid(t, net, spec)
	if len(final.Result.Stats) != 1 || final.Result.Stats[0] != want[0] {
		t.Fatalf("job result %+v != library %+v", final.Result.Stats, want)
	}
	if got := m.StateCount(KindSurvey, StateDone); got != 1 {
		t.Fatalf("StateCount(survey, done) = %d, want 1", got)
	}
	if m.BandsDone() != 12 {
		t.Fatalf("BandsDone = %d, want 12", m.BandsDone())
	}
}

func TestSweepJobMatchesLibrary(t *testing.T) {
	net := testNet(t, 120, 11)
	m := newManager(t, Config{}, realExec(t, net))
	m.Start()
	spec := Spec{Kind: KindSweep, Deployment: "dep", ThetasPi: []float64{0.2, 0.25, 0.5}, Grid: 8}
	snap, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", final.State, final.Err)
	}
	want := wholeGrid(t, net, spec)
	if len(final.Result.Stats) != 3 {
		t.Fatalf("got %d slots, want 3", len(final.Result.Stats))
	}
	for i := range want {
		if final.Result.Stats[i] != want[i] {
			t.Fatalf("slot %d: job %+v != library %+v", i, final.Result.Stats[i], want[i])
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Config{}, realExec(t, testNet(t, 10, 1)))
	bad := []Spec{
		{Kind: "mystery", Deployment: "dep", ThetasPi: []float64{0.5}, Grid: 4},
		{Kind: KindSurvey, Deployment: "", ThetasPi: []float64{0.5}, Grid: 4},
		{Kind: KindSurvey, Deployment: "dep", ThetasPi: []float64{0.5, 0.6}, Grid: 4},
		{Kind: KindSweep, Deployment: "dep", ThetasPi: nil, Grid: 4},
		{Kind: KindSurvey, Deployment: "dep", ThetasPi: []float64{0}, Grid: 4},
		{Kind: KindSurvey, Deployment: "dep", ThetasPi: []float64{1.5}, Grid: 4},
		{Kind: KindSurvey, Deployment: "dep", ThetasPi: []float64{0.5}, Grid: 0},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %d: Submit accepted %+v", i, spec)
		}
	}
}

func TestJournalRoundTripAndCompaction(t *testing.T) {
	net := testNet(t, 100, 3)
	dir := t.TempDir()
	m := newManager(t, Config{Dir: dir}, realExec(t, net))
	m.Start()
	snap, err := m.Submit(surveySpec(6))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q)", final.State, final.Err)
	}
	if !final.Durable {
		t.Fatal("job with a state dir should be durable")
	}
	path := filepath.Join(dir, snap.ID+fileSuffix)
	var data []byte
	// Compaction happens inside finishJob but after the state flips, so
	// poll briefly for the two-line compacted image.
	waitFor(t, "compacted journal", func() bool {
		data, err = os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return len(strings.Split(strings.TrimRight(string(data), "\n"), "\n")) == 2
	})
	hdr, bands, term, good, perr := parseJob(data)
	if perr != nil {
		t.Fatalf("parseJob: %v", perr)
	}
	if good != int64(len(data)) {
		t.Fatalf("good = %d, want %d", good, len(data))
	}
	if hdr.ID != snap.ID || hdr.Spec.Kind != KindSurvey {
		t.Fatalf("header mismatch: %+v", hdr)
	}
	if len(bands) != 0 {
		t.Fatalf("compacted journal still has %d band records", len(bands))
	}
	if term == nil || term.State != StateDone {
		t.Fatalf("terminal record = %+v", term)
	}
	if len(term.Result.Stats) != 1 || term.Result.Stats[0] != final.Result.Stats[0] {
		t.Fatalf("journaled result %+v != in-memory %+v", term.Result.Stats, final.Result.Stats)
	}
}

// TestResumeBitIdentical is the keystone: a job abandoned mid-run (the
// manager torn down with no terminal record, as a kill -9 would) must,
// on a fresh manager over the same directory, resume from the journaled
// bands and finish with a result bit-identical to an uninterrupted run.
func TestResumeBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	net := testNet(t, 150, 19)
	dir := t.TempDir()
	spec := surveySpec(10)

	// Let three band attempts through, then block the fourth until the
	// first manager is being torn down.
	gate := make(chan struct{})
	var fires atomic.Int64
	remove := faultinject.Set(faultinject.JobBand, func() error {
		if fires.Add(1) >= 4 {
			<-gate
		}
		return nil
	})

	m1, err := New(quietConfig(Config{Dir: dir}), realExec(t, net))
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	snap, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "three journaled bands", func() bool {
		s, err := m1.Get(snap.ID)
		return err == nil && s.BandsDone >= 3
	})

	// Tear down like a crash: Close cancels the workers' context and
	// never writes a terminal record for the running job. Release the
	// gate only once the cancellation is in flight so the job cannot
	// sneak to completion.
	closed := make(chan struct{})
	go func() { m1.Close(); close(closed) }()
	waitFor(t, "manager context cancelled", func() bool { return m1.baseCtx.Err() != nil })
	close(gate)
	<-closed
	remove()

	m2 := newManager(t, Config{Dir: dir}, realExec(t, net))
	m2.Start()
	final := waitTerminal(t, m2, snap.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job state = %s (err %q), want done", final.State, final.Err)
	}
	if !final.Resumed {
		t.Fatal("snapshot should report Resumed")
	}
	if m2.Resumes() != 1 {
		t.Fatalf("Resumes = %d, want 1", m2.Resumes())
	}
	want := wholeGrid(t, net, spec)
	if final.Result.Stats[0] != want[0] {
		t.Fatalf("resumed result %+v != uninterrupted %+v", final.Result.Stats[0], want[0])
	}
}

func TestCancelBeforeStartAndDoubleCancel(t *testing.T) {
	// No Start: nothing ever dequeues, so the job is pinned at queued.
	m := newManager(t, Config{}, realExec(t, testNet(t, 10, 1)))
	snap, err := m.Submit(surveySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", got.State)
	}
	again, err := m.Cancel(snap.ID)
	if err != nil {
		t.Fatalf("second cancel errored: %v", err)
	}
	if again.State != StateCancelled || !again.Finished.Equal(got.Finished) {
		t.Fatalf("double cancel not idempotent: %+v vs %+v", again, got)
	}
	if n := m.StateCount(KindSurvey, StateCancelled); n != 1 {
		t.Fatalf("StateCount(cancelled) = %d, want 1", n)
	}
}

func TestCancelMidBand(t *testing.T) {
	defer faultinject.Reset()
	gate := make(chan struct{})
	remove := faultinject.Set(faultinject.JobBand, func() error {
		<-gate
		return nil
	})
	defer remove()
	m := newManager(t, Config{}, realExec(t, testNet(t, 50, 5)))
	m.Start()
	snap, err := m.Submit(surveySpec(6))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job running", func() bool {
		s, err := m.Get(snap.ID)
		return err == nil && s.State == StateRunning
	})
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	close(gate)
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatalf("cancel after terminal errored: %v", err)
	}
}

func TestUnknownAndExpired(t *testing.T) {
	net := testNet(t, 50, 9)
	dir := t.TempDir()
	m := newManager(t, Config{Dir: dir, TTL: 50 * time.Millisecond}, realExec(t, net))
	m.Start()

	if _, err := m.Get("job-does-not-exist"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("job-does-not-exist"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown id: err = %v, want ErrNotFound", err)
	}

	snap, err := m.Submit(surveySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, m, snap.ID)
	// Deterministic expiry: run one GC pass "in the far future".
	m.gcOnce(time.Now().Add(time.Hour))
	if _, err := m.Get(snap.ID); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired id: err = %v, want ErrExpired", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snap.ID+fileSuffix)); !os.IsNotExist(err) {
		t.Fatalf("journal file survived GC: %v", err)
	}
}

func TestQueueFull(t *testing.T) {
	dir := t.TempDir()
	// No Start: the queue never drains.
	m := newManager(t, Config{Dir: dir, QueueDepth: 1}, realExec(t, testNet(t, 10, 1)))
	if _, err := m.Submit(surveySpec(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(surveySpec(4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("rejected submit left %d journal files, want 1", len(ents))
	}
}

func TestTransientBandRetry(t *testing.T) {
	defer faultinject.Reset()
	flaky := fmt.Errorf("disk hiccup: %w", experiment.ErrTransient)
	remove := faultinject.Set(faultinject.JobBand, faultinject.FailN(flaky, 2))
	defer remove()
	net := testNet(t, 80, 13)
	m := newManager(t, Config{
		Retry: experiment.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond},
	}, realExec(t, net))
	m.Start()
	spec := surveySpec(5)
	snap, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (err %q), want done after retries", final.State, final.Err)
	}
	if want := wholeGrid(t, net, spec); final.Result.Stats[0] != want[0] {
		t.Fatal("retried job diverged from library result")
	}
}

func TestTransientRetriesExhausted(t *testing.T) {
	defer faultinject.Reset()
	flaky := fmt.Errorf("still down: %w", experiment.ErrTransient)
	remove := faultinject.Set(faultinject.JobBand, faultinject.Error(flaky))
	defer remove()
	m := newManager(t, Config{
		Retry: experiment.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	}, realExec(t, testNet(t, 30, 2)))
	m.Start()
	snap, err := m.Submit(surveySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Err, "band 0") || !strings.Contains(final.Err, "still down") {
		t.Fatalf("error %q lacks band/cause", final.Err)
	}
}

func TestPanicFailsOnlyThatJob(t *testing.T) {
	defer faultinject.Reset()
	var fires atomic.Int64
	remove := faultinject.Set(faultinject.JobPanic, func() error {
		fires.Add(1)
		panic("job worker bug")
	})
	net := testNet(t, 60, 17)
	m := newManager(t, Config{}, realExec(t, net))
	m.Start()
	snap, err := m.Submit(surveySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Err, "panic in band 0") {
		t.Fatalf("error %q lacks panic band", final.Err)
	}
	if fires.Load() != 1 {
		t.Fatalf("panicking band fired %d times: panics must never retry", fires.Load())
	}
	remove()
	// The manager (and its worker pool) must still run jobs to done.
	spec := surveySpec(5)
	again, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, again.ID); got.State != StateDone {
		t.Fatalf("post-panic job state = %s (err %q), want done", got.State, got.Err)
	}
}

func TestJournalWriteFailureDegradesToMemoryOnly(t *testing.T) {
	defer faultinject.Reset()
	errDisk := errors.New("disk full")
	remove := faultinject.Set(faultinject.JobJournalWrite, faultinject.Error(errDisk))
	dir := t.TempDir()
	net := testNet(t, 60, 23)
	m := newManager(t, Config{Dir: dir}, realExec(t, net))
	m.Start()
	spec := surveySpec(5)
	snap, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("submit must degrade, not fail: %v", err)
	}
	if !errors.Is(m.JournalErr(), errDisk) {
		t.Fatalf("JournalErr = %v, want disk full", m.JournalErr())
	}
	final := waitTerminal(t, m, snap.ID)
	if final.State != StateDone {
		t.Fatalf("memory-only job state = %s (err %q), want done", final.State, final.Err)
	}
	if final.Durable {
		t.Fatal("degraded job should not report Durable")
	}
	if want := wholeGrid(t, net, spec); final.Result.Stats[0] != want[0] {
		t.Fatal("memory-only job diverged from library result")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("degraded submit left %d files on disk", len(ents))
	}
	// Healing: with the fault gone, the next job journals and clears the
	// degradation.
	remove()
	again, err := m.Submit(surveySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, again.ID); got.State != StateDone || !got.Durable {
		t.Fatalf("healed job = %+v, want durable done", got)
	}
	if m.JournalErr() != nil {
		t.Fatalf("JournalErr = %v after heal, want nil", m.JournalErr())
	}
}

func TestReplayQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "job-bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"garbage\n{\"more\":1}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	net := testNet(t, 40, 29)
	m := newManager(t, Config{Dir: dir}, realExec(t, net))
	m.Start()
	if _, err := os.Stat(bad + ".corrupt"); err != nil {
		t.Fatalf("corrupt journal not quarantined: %v", err)
	}
	// The manager still works.
	snap, err := m.Submit(surveySpec(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, m, snap.ID); got.State != StateDone {
		t.Fatalf("state = %s, want done", got.State)
	}
}

func TestReplayRestoresTerminalResult(t *testing.T) {
	dir := t.TempDir()
	net := testNet(t, 70, 31)
	m1 := newManager(t, Config{Dir: dir}, realExec(t, net))
	m1.Start()
	snap, err := m1.Submit(surveySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, m1, snap.ID)
	m1.Close()

	m2 := newManager(t, Config{Dir: dir}, realExec(t, net))
	m2.Start()
	got, err := m2.Get(snap.ID)
	if err != nil {
		t.Fatalf("restored terminal job: %v", err)
	}
	if got.State != StateDone || got.Result == nil || got.Result.Stats[0] != final.Result.Stats[0] {
		t.Fatalf("restored snapshot %+v != original %+v", got, final)
	}
	if m2.Resumes() != 0 {
		t.Fatalf("terminal restore counted as resume: %d", m2.Resumes())
	}
}

func TestSubscribeStreamsBandsAndCloses(t *testing.T) {
	net := testNet(t, 60, 37)
	m := newManager(t, Config{}, realExec(t, net))
	snap, err := m.Submit(surveySpec(6))
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe before Start so no event can be missed.
	first, ch, stop, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if first.State != StateQueued {
		t.Fatalf("initial snapshot state = %s, want queued", first.State)
	}
	m.Start()
	var bandEvents int
	var last Event
	for ev := range ch {
		if ev.Type == EventBand {
			bandEvents++
			if ev.Stats == nil || ev.Slot != 0 {
				t.Fatalf("band event malformed: %+v", ev)
			}
		}
		last = ev
	}
	if bandEvents != 6 {
		t.Fatalf("saw %d band events, want 6", bandEvents)
	}
	if last.Type != EventState || last.State != StateDone {
		t.Fatalf("final event = %+v, want done state event", last)
	}
	// Subscribing to a terminal job yields a closed channel immediately.
	final, ch2, stop2, err := m.Subscribe(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if final.State != StateDone {
		t.Fatalf("terminal subscribe state = %s", final.State)
	}
	if _, open := <-ch2; open {
		t.Fatal("terminal subscribe channel should be closed")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := newManager(t, Config{}, realExec(t, testNet(t, 10, 1)))
	m.Close()
	if _, err := m.Submit(surveySpec(4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
