package jobs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"fullview/internal/core"
)

var fuzzStats = core.RegionStats{Points: 3, FullView: 2, Necessary: 3, Sufficient: 1, MinCovering: 4}

// FuzzReplay throws arbitrary bytes at the job-journal parser and holds
// it to its replay contract: parseJob either rejects the image as
// corrupt, or returns an intact prefix `good` such that (a) good never
// exceeds the input, (b) every restored band is inside the spec's band
// range, and (c) re-parsing data[:good] — exactly what a restart sees
// after the truncation repair — succeeds and restores the same state.
// Seeds cover the healthy shapes (fresh, banded, terminal, compacted)
// and the torn/corrupt edges, so mutation explores the neighbourhood of
// real journals rather than only noise.
func FuzzReplay(f *testing.F) {
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		return append(b, '\n')
	}
	hdr := header{
		Version:   Version,
		Kind:      FileKind,
		ID:        "job-fuzz",
		CreatedNS: time.Unix(1700000000, 0).UnixNano(),
		Spec:      Spec{Kind: KindSweep, Deployment: "dep", ThetasPi: []float64{0.2, 0.5}, Grid: 3},
	}
	b0, b4 := 0, 4
	band0 := mustJSON(record{Band: &b0, Stats: &fuzzStats})
	band4 := mustJSON(record{Band: &b4, Stats: &fuzzStats})
	cancelled := mustJSON(record{State: StateCancelled, FinishedNS: 9})
	failed := mustJSON(record{State: StateFailed, Error: "band 2: boom", FinishedNS: 9})
	h := mustJSON(hdr)

	f.Add([]byte{})
	f.Add(h)
	f.Add(append(append([]byte{}, h...), band0...))
	f.Add(append(append(append([]byte{}, h...), band0...), band4...))
	f.Add(append(append(append([]byte{}, h...), band0...), cancelled...))
	f.Add(append(append([]byte{}, h...), failed...))
	f.Add(append(append([]byte{}, h...), band0[:len(band0)/2]...))         // torn band
	f.Add(append(append(append([]byte{}, h...), cancelled...), band0...)) // record after terminal
	f.Add([]byte("{\"version\":999}\n"))
	f.Add(bytes.Repeat([]byte("\n"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, bands, term, good, err := parseJob(data)
		if err != nil {
			return
		}
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good = %d outside [0, %d]", good, len(data))
		}
		for b := range bands {
			if b < 0 || b >= hdr.Spec.Bands() {
				t.Fatalf("restored band %d outside spec range %d", b, hdr.Spec.Bands())
			}
		}
		// The truncated image must replay to the identical state: this is
		// what the restart path reads after the torn-line repair.
		hdr2, bands2, term2, good2, err2 := parseJob(data[:good])
		if err2 != nil {
			t.Fatalf("re-parse of intact prefix failed: %v", err2)
		}
		if hdr2.ID != hdr.ID || good2 != good || len(bands2) != len(bands) {
			t.Fatalf("re-parse diverged: id %q/%q good %d/%d bands %d/%d",
				hdr.ID, hdr2.ID, good, good2, len(bands), len(bands2))
		}
		if (term == nil) != (term2 == nil) {
			t.Fatal("re-parse diverged on terminal record")
		}
		if term != nil && (term.State != term2.State || term.Error != term2.Error) {
			t.Fatalf("re-parse terminal diverged: %+v vs %+v", term, term2)
		}
	})
}
