package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"fullview/internal/core"
	"fullview/internal/faultinject"
)

// The job journal format: one JSONL file per job under <Dir>. Line 1 is
// the header (format version, job id, creation time, and the full spec
// — everything needed to re-derive the job's work after a crash); every
// further line is one record: a completed band's RegionStats, or the
// terminal state. Records are appended with the depjournal discipline
// (O_APPEND write + fsync per record, truncate-back on a failed write),
// so a kill -9 loses at most the band whose completion was never
// acknowledged; replay tolerates a torn final line and refuses interior
// damage. Once a job reaches a terminal state its file is compacted to
// header + terminal record via the checkpoint-style atomic
// temp+fsync+rename rewrite.
const (
	// Version is the job journal format version.
	Version = 1
	// FileKind tags a job journal file's header line.
	FileKind = "fvcd/job"
	// fileSuffix is the per-job journal filename suffix.
	fileSuffix = ".jsonl"
)

// ErrCorrupt reports a job journal file damaged beyond the
// torn-final-line tolerance. Replay quarantines such files (renamed
// *.corrupt) instead of refusing to start the daemon.
var ErrCorrupt = errors.New("jobs: journal corrupt")

// header is the first line of a job journal file.
type header struct {
	Version   int    `json:"version"`
	Kind      string `json:"kind"`
	ID        string `json:"id"`
	CreatedNS int64  `json:"createdNs"`
	Spec      Spec   `json:"spec"`
}

func (h header) validate() error {
	if h.Version != Version || h.Kind != FileKind {
		return fmt.Errorf("unsupported header version=%d kind=%q", h.Version, h.Kind)
	}
	if h.ID == "" {
		return errors.New("header has no job id")
	}
	return h.Spec.validate()
}

// record is one post-header journal line: exactly one of a completed
// band (Band + Stats) or the terminal state (State, plus Error or
// Result and the completion time for TTL accounting across restarts).
type record struct {
	Band       *int              `json:"band,omitempty"`
	Stats      *core.RegionStats `json:"stats,omitempty"`
	State      State             `json:"state,omitempty"`
	Error      string            `json:"error,omitempty"`
	Result     *Result           `json:"result,omitempty"`
	FinishedNS int64             `json:"finishedNs,omitempty"`
}

func (r *record) validate(spec Spec) error {
	band := r.Band != nil
	term := r.State != ""
	switch {
	case band == term:
		return errors.New("record must be exactly one of band or terminal")
	case band:
		if r.Stats == nil {
			return fmt.Errorf("band %d record has no stats", *r.Band)
		}
		if *r.Band < 0 || *r.Band >= spec.Bands() {
			return fmt.Errorf("band %d out of range [0, %d)", *r.Band, spec.Bands())
		}
	default:
		switch r.State {
		case StateDone:
			if r.Result == nil || len(r.Result.Stats) != spec.Slots() {
				return fmt.Errorf("done record needs a result with %d stats", spec.Slots())
			}
		case StateFailed, StateCancelled:
		default:
			return fmt.Errorf("terminal record has non-terminal state %q", r.State)
		}
	}
	return nil
}

// parseJob decodes one job journal image: the header, the completed
// bands, and the terminal record if the job finished. good is the byte
// length of the intact prefix — the final line may be torn (a crash
// mid-append) and is then dropped so the caller can truncate; any
// earlier malformed line, or a record after the terminal one, is
// ErrCorrupt.
func parseJob(data []byte) (hdr header, bands map[int]core.RegionStats, term *record, good int64, err error) {
	if len(data) == 0 {
		return hdr, nil, nil, 0, fmt.Errorf("%w: empty file", ErrCorrupt)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 64<<20)
	lineEnd := 0
	if !sc.Scan() {
		return hdr, nil, nil, 0, fmt.Errorf("%w: missing header", ErrCorrupt)
	}
	headerLine := sc.Bytes()
	lineEnd += len(headerLine) + 1
	if uerr := strictUnmarshal(headerLine, &hdr); uerr != nil {
		return hdr, nil, nil, 0, fmt.Errorf("%w: bad header: %v", ErrCorrupt, uerr)
	}
	if uerr := hdr.validate(); uerr != nil {
		return hdr, nil, nil, 0, fmt.Errorf("%w: bad header: %v", ErrCorrupt, uerr)
	}
	good = min(int64(lineEnd), int64(len(data)))
	bands = make(map[int]core.RegionStats)
	lineNo := 1
	for sc.Scan() {
		raw := sc.Bytes()
		lineEnd += len(raw) + 1
		lineNo++
		if len(bytes.TrimSpace(raw)) == 0 {
			good = min(int64(lineEnd), int64(len(data)))
			continue
		}
		var rec record
		if uerr := strictUnmarshal(raw, &rec); uerr != nil {
			// An undecodable *final* line is a torn append (a crash
			// mid-write can only persist a prefix of the line): drop it
			// and keep the intact prefix. Interior damage is real
			// corruption and refused.
			if lineEnd >= len(data) {
				break
			}
			return hdr, nil, nil, 0, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, uerr)
		}
		// A record that decodes but violates the schema — band out of
		// range, record after the terminal one — cannot come from a torn
		// write of this format's writer; that is corruption wherever it
		// sits.
		uerr := rec.validate(hdr.Spec)
		if uerr == nil && term != nil {
			uerr = errors.New("record after terminal record")
		}
		if uerr != nil {
			return hdr, nil, nil, 0, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, uerr)
		}
		if rec.Band != nil {
			bands[*rec.Band] = *rec.Stats
		} else {
			r := rec
			term = &r
		}
		good = min(int64(lineEnd), int64(len(data)))
	}
	if serr := sc.Err(); serr != nil {
		return hdr, nil, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, serr)
	}
	return hdr, bands, term, good, nil
}

// strictUnmarshal decodes one JSON document and rejects trailing data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// jobFile is one job's open journal handle.
type jobFile struct {
	path string
	f    *os.File
	size int64
	hdr  header
}

// createJobFile starts a fresh job journal with its header line,
// fsynced before returning. The faultinject.JobJournalWrite point fires
// before the write.
func createJobFile(path string, hdr header) (*jobFile, error) {
	if err := faultinject.Fire(faultinject.JobJournalWrite); err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode header: %w", err)
	}
	line = append(line, '\n')
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: create journal: %w", err)
	}
	jf := &jobFile{path: path, f: f, hdr: hdr}
	if _, err := f.Write(line); err != nil {
		jf.remove()
		return nil, fmt.Errorf("jobs: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		jf.remove()
		return nil, fmt.Errorf("jobs: fsync header: %w", err)
	}
	jf.size = int64(len(line))
	return jf, nil
}

// reopenJobFile opens an existing (replayed) job journal for appending,
// first truncating away a torn tail so a later append cannot land after
// torn bytes and turn them into interior corruption.
func reopenJobFile(path string, hdr header, good int64) (*jobFile, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: reopen journal: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: truncate torn line: %w", err)
	}
	return &jobFile{path: path, f: f, size: good, hdr: hdr}, nil
}

// append durably writes one record: O_APPEND write + fsync, with
// truncate-back on failure so a partial line cannot become interior
// corruption. The faultinject.JobJournalWrite point fires before the
// write.
func (jf *jobFile) append(rec record) error {
	if err := faultinject.Fire(faultinject.JobJournalWrite); err != nil {
		return fmt.Errorf("jobs: write record: %w", err)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encode record: %w", err)
	}
	line = append(line, '\n')
	if _, err := jf.f.Write(line); err != nil {
		_ = jf.f.Truncate(jf.size)
		return fmt.Errorf("jobs: write record: %w", err)
	}
	if err := jf.f.Sync(); err != nil {
		_ = jf.f.Truncate(jf.size)
		return fmt.Errorf("jobs: fsync record: %w", err)
	}
	jf.size += int64(len(line))
	return nil
}

// compact rewrites the journal as header + terminal record only (the
// band records are subsumed by the result), via the atomic
// temp+fsync+rename discipline, and closes the append handle — a
// terminal job never writes again.
func (jf *jobFile) compact(term record) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(jf.hdr); err != nil {
		return fmt.Errorf("jobs: encode header: %w", err)
	}
	if err := enc.Encode(term); err != nil {
		return fmt.Errorf("jobs: encode terminal: %w", err)
	}
	if err := writeAtomic(jf.path, buf.Bytes()); err != nil {
		return err
	}
	jf.size = int64(buf.Len())
	jf.close()
	return nil
}

func (jf *jobFile) close() {
	if jf.f != nil {
		jf.f.Close()
		jf.f = nil
	}
}

func (jf *jobFile) remove() {
	jf.close()
	os.Remove(jf.path)
}

// writeAtomic replaces path with data via temp-file + fsync + rename in
// the destination directory, then syncs the directory entry.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("jobs: create temp: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("jobs: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("jobs: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: close temp: %w", err)
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("jobs: rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
