package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fullview/internal/core"
)

func testHeader(t *testing.T, grid int) header {
	t.Helper()
	return header{
		Version:   Version,
		Kind:      FileKind,
		ID:        "job-test",
		CreatedNS: time.Unix(1700000000, 0).UnixNano(),
		Spec:      surveySpec(grid),
	}
}

func mustLine(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func TestParseJobRejectsDamage(t *testing.T) {
	hdr := mustLine(t, testHeader(t, 4))
	band0 := 0
	stats := wholeGrid(t, testNet(t, 30, 3), surveySpec(4))[0]
	band := mustLine(t, record{Band: &band0, Stats: &stats})
	term := mustLine(t, record{State: StateCancelled, FinishedNS: 1})

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad header json", []byte("{nope\n")},
		{"header wrong kind", mustLine(t, header{Version: Version, Kind: "fvcd/other", ID: "x", Spec: surveySpec(4)})},
		{"header bad spec", mustLine(t, header{Version: Version, Kind: FileKind, ID: "x", Spec: Spec{Kind: KindSurvey, Grid: 4}})},
		{"interior garbage", append(append(append([]byte{}, hdr...), []byte("{broken\n")...), band...)},
		{"band out of range", append(append([]byte{}, hdr...), mustLine(t, record{Band: intp(99), Stats: &stats})...)},
		{"band and terminal in one record", append(append([]byte{}, hdr...), mustLine(t, record{Band: &band0, Stats: &stats, State: StateDone})...)},
		{"record after terminal", append(append(append([]byte{}, hdr...), term...), band...)},
		{"done without result", append(append([]byte{}, hdr...), mustLine(t, record{State: StateDone})...)},
		{"non-terminal state record", append(append([]byte{}, hdr...), mustLine(t, record{State: StateRunning})...)},
	}
	for _, tc := range cases {
		if _, _, _, _, err := parseJob(tc.data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", tc.name, err)
		}
	}
}

func intp(v int) *int { return &v }

func TestParseJobTornFinalLine(t *testing.T) {
	stats := wholeGrid(t, testNet(t, 30, 3), surveySpec(4))[0]
	var buf bytes.Buffer
	buf.Write(mustLine(t, testHeader(t, 4)))
	buf.Write(mustLine(t, record{Band: intp(0), Stats: &stats}))
	buf.Write(mustLine(t, record{Band: intp(1), Stats: &stats}))
	intact := buf.Len()
	full := mustLine(t, record{Band: intp(2), Stats: &stats})
	// Every torn prefix of the final record — including a complete line
	// missing its newline being valid — must keep the intact records.
	for cut := 1; cut < len(full); cut++ {
		data := append(append([]byte{}, buf.Bytes()...), full[:cut]...)
		hdr, bands, term, good, err := parseJob(data)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if hdr.ID != "job-test" || term != nil {
			t.Fatalf("cut %d: hdr %+v term %+v", cut, hdr, term)
		}
		wantBands := 2
		wantGood := int64(intact)
		if cut == len(full)-1 {
			// All bytes but the trailing newline: a complete JSON line at
			// EOF parses fine.
			wantBands, wantGood = 3, int64(len(data))
		}
		if len(bands) != wantBands || good != wantGood {
			t.Fatalf("cut %d: bands %d good %d, want %d/%d", cut, len(bands), good, wantBands, wantGood)
		}
	}
}

func TestReopenAfterTornLineResumesCleanly(t *testing.T) {
	dir := t.TempDir()
	stats := wholeGrid(t, testNet(t, 30, 3), surveySpec(4))[0]
	hdr := testHeader(t, 4)
	var buf bytes.Buffer
	buf.Write(mustLine(t, hdr))
	buf.Write(mustLine(t, record{Band: intp(0), Stats: &stats}))
	intact := buf.Len()
	buf.WriteString(`{"band":1,"sta`) // torn mid-append
	path := filepath.Join(dir, "job-test"+fileSuffix)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, bands, _, good, err := parseJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 1 || good != int64(intact) {
		t.Fatalf("bands %d good %d, want 1/%d", len(bands), good, intact)
	}
	jf, err := reopenJobFile(path, hdr, good)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.close()
	if err := jf.append(record{Band: intp(1), Stats: &stats}); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, bands, _, good, err = parseJob(data)
	if err != nil {
		t.Fatalf("journal corrupt after reopen+append: %v", err)
	}
	if len(bands) != 2 || good != int64(len(data)) {
		t.Fatalf("after repair: bands %d good %d/%d", len(bands), good, len(data))
	}
}

func TestCompactionIsAtomicImage(t *testing.T) {
	dir := t.TempDir()
	stats := wholeGrid(t, testNet(t, 30, 3), surveySpec(4))[0]
	hdr := testHeader(t, 4)
	path := filepath.Join(dir, hdr.ID+fileSuffix)
	jf, err := createJobFile(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if err := jf.append(record{Band: intp(b), Stats: &stats}); err != nil {
			t.Fatal(err)
		}
	}
	term := record{State: StateDone, Result: &Result{Stats: []core.RegionStats{stats}}, FinishedNS: 42}
	if err := jf.append(term); err != nil {
		t.Fatal(err)
	}
	if err := jf.compact(term); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("compacted file has %d lines, want 2", n)
	}
	_, bands, got, good, err := parseJob(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 0 || got == nil || got.State != StateDone || good != int64(len(data)) {
		t.Fatalf("compacted image parse: bands %d term %+v", len(bands), got)
	}
	// No temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries after compaction, want 1", len(ents))
	}
}
