// Package jobs is fvcd's crash-safe asynchronous job subsystem: region
// surveys and θ-sweeps run as durable, resumable, cancellable
// background work instead of inline request/response compute.
//
// A job is split into bands — one grid row at one θ — and each
// completed band's RegionStats is fsynced to a per-job JSONL journal
// before the next band starts (see journal.go for the format). Because
// RegionStats.Merge is exact for any partition of the region, replaying
// the completed bands after a kill -9 and computing only the missing
// ones reproduces the uninterrupted result bit-for-bit.
//
// Robustness contract:
//
//   - a panic inside a band fails only that job (structured *PanicError
//     with the stack); the manager and its other jobs keep running
//   - transient band errors (experiment.ErrTransient, or the policy's
//     own classifier) get bounded retries with capped jittered backoff;
//     panics and cancellation are never retried
//   - the per-kind queue is bounded: Submit fails fast with
//     ErrQueueFull instead of accepting unbounded work
//   - journal-write failure degrades the job to memory-only (JournalErr
//     reports it for /readyz) — results still complete, they just don't
//     survive a restart
//   - terminal jobs are garbage-collected after Config.TTL; a polled id
//     that was collected reports ErrExpired (HTTP 410), distinct from
//     never-existed ErrNotFound (404)
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math/big"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fullview/internal/core"
	"fullview/internal/experiment"
	"fullview/internal/faultinject"
	"fullview/internal/sweep"
)

// Kind names what a job computes.
type Kind string

const (
	// KindSurvey surveys a k×k grid at a single θ.
	KindSurvey Kind = "survey"
	// KindSweep surveys the same k×k grid at each θ in a list.
	KindSweep Kind = "sweep"
)

// Kinds lists every job kind, in a fixed order (metrics registration
// iterates it).
func Kinds() []Kind { return []Kind{KindSurvey, KindSweep} }

// State is a job's lifecycle state: queued → running → one of the
// terminal states done / failed / cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// States lists every job state, in a fixed order.
func States() []State {
	return []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is the durable description of a job — everything needed to
// re-derive its work after a crash. It is journaled verbatim in the
// job-file header.
type Spec struct {
	Kind Kind `json:"kind"`
	// Deployment is the registered deployment id the job surveys.
	Deployment string `json:"deployment"`
	// ThetasPi holds the full-view angles as fractions of π, one per
	// result slot. A survey has exactly one; a sweep one per θ.
	ThetasPi []float64 `json:"thetasPi"`
	// Grid is the side of the k×k sample grid. One band = one grid row
	// at one θ.
	Grid int `json:"grid"`
	// Workers is the intra-band parallelism (0 = executor default).
	Workers int `json:"workers,omitempty"`
	// Version pins the deployment index version the job must run
	// against; a resumed job whose deployment has since mutated fails
	// instead of mixing epochs.
	Version uint64 `json:"version,omitempty"`
}

// Slots is the number of result slots (one RegionStats per θ).
func (s Spec) Slots() int { return len(s.ThetasPi) }

// Bands is the total number of bands: Grid rows per θ slot.
func (s Spec) Bands() int { return len(s.ThetasPi) * s.Grid }

// Slot returns the θ-slot band b belongs to.
func (s Spec) Slot(band int) int { return band / s.Grid }

// Row returns the grid row band b covers within its slot.
func (s Spec) Row(band int) int { return band % s.Grid }

func (s Spec) validate() error {
	switch s.Kind {
	case KindSurvey:
		if len(s.ThetasPi) != 1 {
			return fmt.Errorf("jobs: survey wants exactly one theta, got %d", len(s.ThetasPi))
		}
	case KindSweep:
		if len(s.ThetasPi) == 0 {
			return errors.New("jobs: sweep wants at least one theta")
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q", s.Kind)
	}
	if s.Deployment == "" {
		return errors.New("jobs: spec has no deployment id")
	}
	for _, tp := range s.ThetasPi {
		if !(tp > 0 && tp <= 1) {
			return fmt.Errorf("jobs: thetaPi %v outside (0, 1]", tp)
		}
	}
	if s.Grid <= 0 {
		return fmt.Errorf("jobs: grid %d must be positive", s.Grid)
	}
	if s.Workers < 0 {
		return fmt.Errorf("jobs: workers %d must be non-negative", s.Workers)
	}
	return nil
}

// Result is a finished job's output: one RegionStats per θ slot, each
// the exact merge of that slot's bands in row order — bit-identical to
// a whole-grid SurveyRegion at the same θ.
type Result struct {
	Stats []core.RegionStats `json:"stats"`
}

// BandRunner computes one band of a job. It must be deterministic in
// band (resume depends on re-running only missing bands) and honour ctx.
type BandRunner func(ctx context.Context, band int) (core.RegionStats, error)

// Exec prepares a spec for execution — resolving the deployment,
// building checkers — and returns the job's band runner. It is called
// once per run attempt (fresh after a resume), never at Submit time.
type Exec func(spec Spec) (BandRunner, error)

// PanicError is a panic captured inside a band, converted to an error
// so it fails only its own job.
type PanicError struct {
	Band  int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("jobs: panic in band %d: %v", e.Band, e.Value)
}

// EventType tags a streamed job event.
type EventType string

const (
	// EventState reports a state transition.
	EventState EventType = "state"
	// EventBand reports one completed band with its partial stats.
	EventBand EventType = "band"
)

// Event is one entry in a job's progress stream.
type Event struct {
	Type      EventType         `json:"type"`
	State     State             `json:"state,omitempty"`
	Band      int               `json:"band"`
	Slot      int               `json:"slot"`
	BandsDone int               `json:"bandsDone"`
	Bands     int               `json:"bands"`
	Stats     *core.RegionStats `json:"stats,omitempty"`
	// ElapsedNS is the band's wall time (band events only; zero on
	// events replayed for bands that completed before a resume).
	ElapsedNS int64  `json:"elapsedNs,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID        string
	Spec      Spec
	State     State
	Bands     int
	BandsDone int
	// Resumed reports that the job was restored from its journal after
	// a restart rather than submitted to this process.
	Resumed bool
	// Durable is false when the job runs memory-only (no state dir, or
	// its journal could not be written).
	Durable  bool
	Err      string
	Result   *Result
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Sentinel errors mapped to HTTP statuses by the server layer.
var (
	// ErrNotFound reports an id that never existed here.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrExpired reports an id whose terminal job was garbage-collected
	// after Config.TTL.
	ErrExpired = errors.New("jobs: job result expired")
	// ErrQueueFull reports a bounded queue rejecting a Submit.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed reports a Submit after Close.
	ErrClosed = errors.New("jobs: manager closed")
)

// Hooks let the embedding service observe job completion without the
// manager depending on a metrics package.
type Hooks struct {
	// JobDone fires once per job reaching a terminal state, with the
	// wall time from run start (or creation, if it never ran).
	JobDone func(kind Kind, state State, elapsed time.Duration)
	// BandDone fires once per band completed by this process, with the
	// number of sample points the band evaluated and the band's wall
	// time (including retries). Bands restored from the journal on
	// resume do not re-fire — they did no work here.
	BandDone func(kind Kind, points int, elapsed time.Duration)
}

// Config tunes a Manager. The zero value works (memory-only jobs).
type Config struct {
	// Dir is the job-journal directory; empty disables durability.
	Dir string
	// QueueDepth bounds each kind's pending queue (default 64).
	QueueDepth int
	// Concurrency is the number of workers per kind (default 2).
	Concurrency int
	// TTL is how long terminal jobs are retained for polling before
	// garbage collection (default 15m; negative retains forever).
	TTL time.Duration
	// Retry bounds per-band retries of transient errors. A zero
	// MaxAttempts selects the default {3 attempts, 25ms base, 250ms
	// cap}; delays are jittered ±20%.
	Retry experiment.RetryPolicy
	// Throttle inserts a pause after every completed band — a test and
	// ops knob that makes mid-job crashes reproducible.
	Throttle time.Duration
	// Logger receives job-lifecycle and journal-degradation logs
	// (default log.Default()).
	Logger *log.Logger
	// Hooks observe job completion.
	Hooks Hooks
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.Retry.MaxAttempts == 0 {
		c.Retry = experiment.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    250 * time.Millisecond,
			Retryable:   c.Retry.Retryable,
		}
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// job is the manager's internal record of one job.
type job struct {
	id      string
	spec    Spec
	created time.Time

	mu        sync.Mutex
	state     State
	started   time.Time
	finished  time.Time
	perBand   map[int]core.RegionStats
	result    *Result
	errMsg    string
	cancelled bool
	cancel    context.CancelFunc
	resumed   bool
	durable   bool
	file      *jobFile
	path      string
	subs      map[chan Event]struct{}
}

// Manager owns the job table, the per-kind worker pools and bounded
// queues, the journal directory, and the TTL garbage collector.
type Manager struct {
	cfg  Config
	exec Exec

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	gone    map[string]time.Time
	queues  map[Kind]chan *job
	closed  bool
	started bool

	errMu      sync.Mutex
	journalErr error

	inflight  atomic.Int64
	bandsDone atomic.Int64
	resumes   atomic.Int64
	counts    map[Kind]map[State]*atomic.Int64
}

// New builds a Manager. exec is consulted when a job starts running.
// Call Start to begin replay and processing; until then Submit only
// queues.
func New(cfg Config, exec Exec) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: state dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		exec:       exec,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		gone:       make(map[string]time.Time),
		queues:     make(map[Kind]chan *job),
		counts:     make(map[Kind]map[State]*atomic.Int64),
	}
	for _, k := range Kinds() {
		m.queues[k] = make(chan *job, cfg.QueueDepth)
		m.counts[k] = make(map[State]*atomic.Int64)
		for _, s := range States() {
			m.counts[k][s] = new(atomic.Int64)
		}
	}
	return m, nil
}

// Start replays the journal directory — restoring terminal results and
// re-queueing incomplete jobs for resumption — and then launches the
// worker pools and the TTL garbage collector. It is called once, from
// the server's warmup goroutine, so replay cost never delays listening.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.closed {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()

	var resumed []*job
	if err := faultinject.Fire(faultinject.JobReplay); err != nil {
		// A failed replay abandons the journals (they stay on disk for a
		// later restart) but must not take the daemon down.
		m.cfg.Logger.Printf("fvcd: job replay failed, starting with no restored jobs: %v", err)
	} else if m.cfg.Dir != "" {
		resumed = m.replay()
	}

	for _, k := range Kinds() {
		q := m.queues[k]
		for i := 0; i < m.cfg.Concurrency; i++ {
			m.wg.Add(1)
			go m.worker(q)
		}
	}
	if m.cfg.TTL > 0 {
		m.wg.Add(1)
		go m.gcLoop()
	}

	// Re-queue incomplete jobs oldest-first. The queue may be smaller
	// than the resumed set, so fall back to a blocking send that aborts
	// on shutdown.
	sort.Slice(resumed, func(i, j int) bool { return resumed[i].created.Before(resumed[j].created) })
	for _, j := range resumed {
		m.resumes.Add(1)
		m.bumpState(j.spec.Kind, StateQueued)
		q := m.queues[j.spec.Kind]
		select {
		case q <- j:
		default:
			m.wg.Add(1)
			go func(j *job) {
				defer m.wg.Done()
				select {
				case q <- j:
				case <-m.baseCtx.Done():
				}
			}(j)
		}
	}
}

// replay scans Dir for job journals, restoring each into the job table.
// Corrupt files are quarantined (renamed *.corrupt), terminal jobs past
// TTL are collected immediately, and incomplete jobs are returned for
// re-queueing with their completed bands loaded.
func (m *Manager) replay() (resumed []*job) {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		m.cfg.Logger.Printf("fvcd: job replay: %v", err)
		return nil
	}
	now := time.Now()
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), fileSuffix) {
			continue
		}
		path := filepath.Join(m.cfg.Dir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			m.cfg.Logger.Printf("fvcd: job replay: read %s: %v", ent.Name(), err)
			continue
		}
		hdr, bands, term, good, err := parseJob(data)
		if err != nil {
			m.cfg.Logger.Printf("fvcd: job replay: quarantining %s: %v", ent.Name(), err)
			if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
				m.cfg.Logger.Printf("fvcd: job replay: quarantine failed: %v", rerr)
			}
			continue
		}
		j := &job{
			id:      hdr.ID,
			spec:    hdr.Spec,
			created: time.Unix(0, hdr.CreatedNS),
			perBand: bands,
			durable: true,
			path:    path,
			subs:    make(map[chan Event]struct{}),
		}
		m.mu.Lock()
		if _, dup := m.jobs[hdr.ID]; dup {
			m.mu.Unlock()
			continue
		}
		if term != nil {
			j.state = term.State
			j.errMsg = term.Error
			j.result = term.Result
			j.finished = time.Unix(0, term.FinishedNS)
			if m.cfg.TTL > 0 && now.Sub(j.finished) > m.cfg.TTL {
				m.gone[j.id] = now
				m.mu.Unlock()
				os.Remove(path)
				continue
			}
			m.jobs[j.id] = j
			m.mu.Unlock()
			continue
		}
		jf, err := reopenJobFile(path, hdr, good)
		if err != nil {
			m.cfg.Logger.Printf("fvcd: job replay: %s runs memory-only: %v", hdr.ID, err)
			m.noteJournalErr(err)
		} else {
			j.file = jf
		}
		j.state = StateQueued
		j.resumed = true
		m.jobs[j.id] = j
		m.mu.Unlock()
		resumed = append(resumed, j)
		m.cfg.Logger.Printf("fvcd: job %s resumed: %d/%d bands journaled", j.id, len(bands), j.spec.Bands())
	}
	return resumed
}

// Close stops the workers, abandons running jobs without a terminal
// record (shutdown is not cancellation — they resume on the next
// Start), and closes every open journal handle.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.file != nil {
			j.file.close()
			j.file = nil
		}
		j.mu.Unlock()
	}
}

// Submit validates and enqueues a new job, returning its initial
// snapshot. ErrQueueFull reports a saturated kind queue (retryable);
// ErrClosed a shut-down manager.
func (m *Manager) Submit(spec Spec) (Snapshot, error) {
	if err := spec.validate(); err != nil {
		return Snapshot{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	id := newID()
	for _, taken := m.jobs[id]; taken; _, taken = m.jobs[id] {
		id = newID()
	}
	j := &job{
		id:      id,
		spec:    spec,
		created: time.Now(),
		state:   StateQueued,
		perBand: make(map[int]core.RegionStats),
		subs:    make(map[chan Event]struct{}),
	}
	m.jobs[id] = j
	q := m.queues[spec.Kind]
	m.mu.Unlock()

	if m.cfg.Dir != "" {
		path := filepath.Join(m.cfg.Dir, id+fileSuffix)
		hdr := header{Version: Version, Kind: FileKind, ID: id, CreatedNS: j.created.UnixNano(), Spec: spec}
		jf, err := createJobFile(path, hdr)
		if err != nil {
			// Degrade to memory-only rather than refusing the work; the
			// readiness probe surfaces the journal failure.
			m.noteJournalErr(err)
		} else {
			m.clearJournalErr()
			j.mu.Lock()
			j.file = jf
			j.path = path
			j.durable = true
			j.mu.Unlock()
		}
	}

	select {
	case q <- j:
	default:
		m.mu.Lock()
		delete(m.jobs, id)
		m.mu.Unlock()
		j.mu.Lock()
		if j.file != nil {
			j.file.remove()
			j.file = nil
		}
		j.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
	m.bumpState(spec.Kind, StateQueued)
	return m.snapshot(j), nil
}

// Get returns the job's current snapshot, ErrExpired for a
// garbage-collected id, or ErrNotFound.
func (m *Manager) Get(id string) (Snapshot, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	return m.snapshot(j), nil
}

// Cancel requests cancellation and returns the job's snapshot right
// after the request: a queued job is cancelled synchronously, a running
// one asynchronously (poll until terminal), and cancelling a terminal
// job is an idempotent no-op.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Snapshot{}, err
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
	case j.state == StateQueued:
		j.cancelled = true
		j.mu.Unlock()
		m.finishJob(j, StateCancelled, "", nil)
	default:
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	return m.snapshot(j), nil
}

// Subscribe returns the job's current snapshot plus a channel of its
// further events; the channel is closed when the job reaches a terminal
// state (immediately, for an already-terminal job). Call the returned
// stop function when done listening — slow listeners never block the
// job (events are dropped, not queued unboundedly).
func (m *Manager) Subscribe(id string) (Snapshot, <-chan Event, func(), error) {
	j, err := m.lookup(id)
	if err != nil {
		return Snapshot{}, nil, nil, err
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		ch := make(chan Event)
		close(ch)
		return m.snapshot(j), ch, func() {}, nil
	}
	depth := j.spec.Bands() + 16
	if depth > 1024 {
		depth = 1024
	}
	ch := make(chan Event, depth)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	stop := func() {
		j.mu.Lock()
		if j.subs != nil {
			delete(j.subs, ch)
		}
		j.mu.Unlock()
	}
	return m.snapshot(j), ch, stop, nil
}

// JournalErr reports the latest job-journal write/replay failure, nil
// when journaling is healthy. The server's readiness probe maps a
// non-nil value to "degraded".
func (m *Manager) JournalErr() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.journalErr
}

// StateCount returns the number of jobs that have entered the given
// state (monotonic; backs fvcd_jobs_total{kind,state}).
func (m *Manager) StateCount(kind Kind, state State) int64 {
	return m.counts[kind][state].Load()
}

// Inflight returns the number of currently running jobs.
func (m *Manager) Inflight() int64 { return m.inflight.Load() }

// BandsDone returns the total number of bands completed (monotonic).
func (m *Manager) BandsDone() int64 { return m.bandsDone.Load() }

// Resumes returns the number of jobs resumed from journals (monotonic;
// backs fvcd_job_resume_total).
func (m *Manager) Resumes() int64 { return m.resumes.Load() }

func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j, nil
	}
	if _, ok := m.gone[id]; ok {
		return nil, ErrExpired
	}
	return nil, ErrNotFound
}

func (m *Manager) snapshot(j *job) Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.id,
		Spec:      j.spec,
		State:     j.state,
		Bands:     j.spec.Bands(),
		BandsDone: len(j.perBand),
		Resumed:   j.resumed,
		Durable:   j.durable,
		Err:       j.errMsg,
		Result:    j.result,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
	}
}

func (m *Manager) bumpState(kind Kind, state State) {
	if c, ok := m.counts[kind][state]; ok {
		c.Add(1)
	}
}

// worker drains one kind's queue until shutdown.
func (m *Manager) worker(q chan *job) {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j := <-q:
			m.runJob(j)
		}
	}
}

// runJob executes every band the journal doesn't already hold, then
// merges the per-band stats into the result. A ctx error routes to
// abandon (cancel vs. shutdown); anything else fails the job.
func (m *Manager) runJob(j *job) {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	defer cancel()
	m.bumpState(j.spec.Kind, StateRunning)
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	m.emitState(j, StateRunning)

	runner, err := m.exec(j.spec)
	if err != nil {
		m.finishJob(j, StateFailed, "start job: "+err.Error(), nil)
		return
	}

	bands := j.spec.Bands()
	for band := 0; band < bands; band++ {
		j.mu.Lock()
		_, done := j.perBand[band]
		j.mu.Unlock()
		if done {
			continue
		}
		t0 := time.Now()
		stats, err := m.runBand(ctx, runner, band)
		if err != nil {
			if ctx.Err() != nil {
				m.abandon(j)
				return
			}
			m.finishJob(j, StateFailed, fmt.Sprintf("band %d: %v", band, err), nil)
			return
		}
		m.completeBand(j, band, stats, time.Since(t0))
		if m.cfg.Throttle > 0 {
			select {
			case <-ctx.Done():
				m.abandon(j)
				return
			case <-time.After(m.cfg.Throttle):
			}
		}
	}
	m.finishJob(j, StateDone, "", m.merge(j))
}

// abandon handles a ctx-terminated run: a cancelled job gets its
// terminal record; a shutdown leaves the job untouched (no terminal
// line) so the next Start resumes it.
func (m *Manager) abandon(j *job) {
	j.mu.Lock()
	cancelled := j.cancelled
	j.mu.Unlock()
	if cancelled {
		m.finishJob(j, StateCancelled, "", nil)
	}
}

// runBand runs one band under the retry policy: transient errors retry
// with capped, ±20%-jittered exponential backoff; panics and ctx errors
// never retry.
func (m *Manager) runBand(ctx context.Context, runner BandRunner, band int) (core.RegionStats, error) {
	pol := m.cfg.Retry
	var last error
	for attempt := 1; ; attempt++ {
		stats, err := m.bandAttempt(ctx, runner, band)
		if err == nil {
			return stats, nil
		}
		last = err
		if ctx.Err() != nil || attempt >= pol.MaxAttempts || !m.retryableBand(err) {
			return core.RegionStats{}, last
		}
		select {
		case <-ctx.Done():
			return core.RegionStats{}, ctx.Err()
		case <-time.After(jitter(backoffDelay(pol, attempt-1))):
		}
	}
}

// bandAttempt is one attempt with panic containment: a panic in the
// runner (or an armed JobPanic hook) becomes a *PanicError instead of
// unwinding the worker.
func (m *Manager) bandAttempt(ctx context.Context, runner BandRunner, band int) (stats core.RegionStats, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Band: band, Value: v, Stack: debug.Stack()}
		}
	}()
	if ferr := faultinject.Fire(faultinject.JobBand); ferr != nil {
		return stats, ferr
	}
	if ferr := faultinject.Fire(faultinject.JobPanic); ferr != nil {
		return stats, ferr
	}
	return runner(ctx, band)
}

func (m *Manager) retryableBand(err error) bool {
	var pe *PanicError
	var se *sweep.PanicError
	if errors.As(err, &pe) || errors.As(err, &se) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if m.cfg.Retry.Retryable != nil {
		return m.cfg.Retry.Retryable(err)
	}
	return errors.Is(err, experiment.ErrTransient)
}

// backoffDelay mirrors experiment.RetryPolicy's unexported backoff:
// BaseDelay doubling per retry, capped at MaxDelay.
func backoffDelay(p experiment.RetryPolicy, retry int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 0; i < retry; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// jitter spreads d by ±20% so retries from concurrent jobs don't
// synchronise.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	span := int64(d) * 2 / 5
	if span <= 0 {
		return d
	}
	n, err := rand.Int(rand.Reader, big.NewInt(span))
	if err != nil {
		return d
	}
	return time.Duration(int64(d) - span/2 + n.Int64())
}

// completeBand records a finished band: journal first (failure degrades
// to memory-only, never fails the band), then counters, hooks, and
// events. elapsed is the band's wall time, surfaced through
// Hooks.BandDone and the band event; the journal record deliberately
// omits it, so bands restored on resume report no phantom work.
func (m *Manager) completeBand(j *job, band int, stats core.RegionStats, elapsed time.Duration) {
	j.mu.Lock()
	j.perBand[band] = stats
	done := len(j.perBand)
	file := j.file
	j.mu.Unlock()
	if file != nil {
		b := band
		s := stats
		if err := file.append(record{Band: &b, Stats: &s}); err != nil {
			m.noteJournalErr(err)
		} else {
			m.clearJournalErr()
		}
	}
	m.bandsDone.Add(1)
	if m.cfg.Hooks.BandDone != nil {
		m.cfg.Hooks.BandDone(j.spec.Kind, stats.Points, elapsed)
	}
	m.emit(j, Event{
		Type:      EventBand,
		State:     StateRunning,
		Band:      band,
		Slot:      j.spec.Slot(band),
		BandsDone: done,
		Bands:     j.spec.Bands(),
		Stats:     &stats,
		ElapsedNS: elapsed.Nanoseconds(),
	})
}

// merge folds the per-band stats into one RegionStats per θ slot, in
// ascending band order — the same order an uninterrupted whole-grid
// survey visits rows, so the merge is bit-identical to it.
func (m *Manager) merge(j *job) *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	res := &Result{Stats: make([]core.RegionStats, j.spec.Slots())}
	for s := 0; s < j.spec.Slots(); s++ {
		var acc core.RegionStats
		for r := 0; r < j.spec.Grid; r++ {
			acc = acc.Merge(j.perBand[s*j.spec.Grid+r])
		}
		res.Stats[s] = acc
	}
	return res
}

// finishJob moves a job to its terminal state exactly once: terminal
// journal record + atomic compaction, final event, subscriber channel
// close, completion hook.
func (m *Manager) finishJob(j *job, state State, errMsg string, result *Result) {
	now := time.Now()
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.finished = now
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
	file := j.file
	j.file = nil
	subs := j.subs
	j.subs = nil
	started := j.started
	done := len(j.perBand)
	j.mu.Unlock()

	m.bumpState(j.spec.Kind, state)
	if file != nil {
		rec := record{State: state, Error: errMsg, Result: result, FinishedNS: now.UnixNano()}
		if err := file.append(rec); err != nil {
			m.noteJournalErr(err)
			file.close()
		} else {
			m.clearJournalErr()
			if err := file.compact(rec); err != nil {
				// Non-fatal: the appended terminal record is already
				// durable, the file is just un-compacted.
				m.cfg.Logger.Printf("fvcd: job %s: compact: %v", j.id, err)
				file.close()
			}
		}
	}
	ev := Event{Type: EventState, State: state, BandsDone: done, Bands: j.spec.Bands(), Error: errMsg}
	for ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	if m.cfg.Hooks.JobDone != nil {
		from := started
		if from.IsZero() {
			from = j.created
		}
		m.cfg.Hooks.JobDone(j.spec.Kind, state, now.Sub(from))
	}
}

func (m *Manager) emitState(j *job, state State) {
	j.mu.Lock()
	done := len(j.perBand)
	j.mu.Unlock()
	m.emit(j, Event{Type: EventState, State: state, BandsDone: done, Bands: j.spec.Bands()})
}

func (m *Manager) emit(j *job, ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (m *Manager) noteJournalErr(err error) {
	m.errMu.Lock()
	changed := m.journalErr == nil
	m.journalErr = err
	m.errMu.Unlock()
	if changed {
		m.cfg.Logger.Printf("fvcd: job journal degraded (jobs run memory-only): %v", err)
	}
}

func (m *Manager) clearJournalErr() {
	m.errMu.Lock()
	healed := m.journalErr != nil
	m.journalErr = nil
	m.errMu.Unlock()
	if healed {
		m.cfg.Logger.Printf("fvcd: job journal healed")
	}
}

// gcLoop collects terminal jobs older than TTL, deleting their journal
// files and remembering the ids (for ErrExpired) for ten more TTLs.
func (m *Manager) gcLoop() {
	defer m.wg.Done()
	iv := m.cfg.TTL / 4
	if iv < 10*time.Millisecond {
		iv = 10 * time.Millisecond
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-t.C:
			m.gcOnce(time.Now())
		}
	}
}

func (m *Manager) gcOnce(now time.Time) {
	var paths []string
	m.mu.Lock()
	for id, j := range m.jobs {
		j.mu.Lock()
		expired := j.state.Terminal() && now.Sub(j.finished) > m.cfg.TTL
		path := j.path
		j.mu.Unlock()
		if expired {
			delete(m.jobs, id)
			m.gone[id] = now
			if path != "" {
				paths = append(paths, path)
			}
		}
	}
	for id, at := range m.gone {
		if now.Sub(at) > 10*m.cfg.TTL {
			delete(m.gone, id)
		}
	}
	m.mu.Unlock()
	for _, p := range paths {
		os.Remove(p)
	}
}

func newID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("job-%d", time.Now().UnixNano())
	}
	return "job-" + hex.EncodeToString(b[:])
}
