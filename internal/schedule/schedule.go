// Package schedule selects which cameras to power on: an
// over-provisioned deployment (anything comfortably above the paper's
// sufficient CSA) can full-view cover the region with a fraction of its
// cameras awake, and rotating disjoint such subsets multiplies battery
// lifetime — the full-view analogue of the k-coverage sleep scheduling
// that motivates Kumar et al. [6].
//
// Selection uses the paper's *sufficient* condition as a certificate:
// activating a set of cameras such that every θ-sector of every grid
// point contains a covering camera guarantees full-view coverage
// (Section IV). That requirement is a set-cover instance — each camera
// covers a set of (point, sector) pairs — solved greedily (ln-factor
// approximation, deterministic).
package schedule

import (
	"errors"
	"fmt"
	"math"

	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/sensor"
)

// Errors.
var (
	ErrBadTheta    = errors.New("schedule: effective angle θ must be in (0, π]")
	ErrBadGridSide = errors.New("schedule: grid side must be positive")
	ErrInfeasible  = errors.New("schedule: the full network does not satisfy the sufficient condition everywhere")
)

// coverElement is one (grid point, sector) requirement.
type coverElement struct {
	point  int
	sector int
}

// instance is the prepared set-cover problem.
type instance struct {
	numElements int
	// coverage[i] lists the element ids camera i satisfies.
	coverage [][]int32
}

// buildInstance enumerates, for every camera, the (point, sector) pairs
// it satisfies: the camera covers the point and its viewed direction
// falls in the sector.
func buildInstance(net *sensor.Network, theta float64, gridSide int) (*instance, []geom.Vec, []geom.Sector, error) {
	if !(theta > 0) || theta > math.Pi {
		return nil, nil, nil, fmt.Errorf("%w: got %v", ErrBadTheta, theta)
	}
	if gridSide <= 0 {
		return nil, nil, nil, fmt.Errorf("%w: got %d", ErrBadGridSide, gridSide)
	}
	t := net.Torus()
	points, err := deploy.GridPoints(t, gridSide)
	if err != nil {
		return nil, nil, nil, err
	}
	sectors, err := geom.AnchoredPartition(theta)
	if err != nil {
		return nil, nil, nil, err
	}
	inst := &instance{
		numElements: len(points) * len(sectors),
		coverage:    make([][]int32, net.Len()),
	}
	for ci := 0; ci < net.Len(); ci++ {
		cam := net.Camera(ci)
		for pi, p := range points {
			if !cam.Covers(t, p) {
				continue
			}
			beta := cam.ViewedDirection(t, p)
			for si, sec := range sectors {
				if sec.Contains(beta) {
					inst.coverage[ci] = append(inst.coverage[ci], int32(pi*len(sectors)+si))
				}
			}
		}
	}
	return inst, points, sectors, nil
}

// greedyCover runs weighted-less greedy set cover over the instance,
// restricted to the cameras in allowed (nil = all). Returns the chosen
// camera indices in selection order, or ErrInfeasible when the allowed
// cameras cannot satisfy every element.
func greedyCover(inst *instance, allowed []bool) ([]int, error) {
	satisfied := make([]bool, inst.numElements)
	remaining := inst.numElements
	gains := make([]int, len(inst.coverage))
	usable := make([]bool, len(inst.coverage))
	for ci := range inst.coverage {
		usable[ci] = allowed == nil || allowed[ci]
		if usable[ci] {
			gains[ci] = len(inst.coverage[ci])
		}
	}
	var chosen []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for ci, ok := range usable {
			if !ok {
				continue
			}
			// Lazy refresh: recompute the stale optimistic gain only for
			// the current maximum candidate.
			if gains[ci] > bestGain {
				fresh := 0
				for _, e := range inst.coverage[ci] {
					if !satisfied[e] {
						fresh++
					}
				}
				gains[ci] = fresh
				if fresh > bestGain {
					best, bestGain = ci, fresh
				}
			}
		}
		if best < 0 {
			return nil, ErrInfeasible
		}
		chosen = append(chosen, best)
		usable[best] = false
		for _, e := range inst.coverage[best] {
			if !satisfied[e] {
				satisfied[e] = true
				remaining--
			}
		}
	}
	return chosen, nil
}

// MinimalCover selects a small subset of cameras whose activation
// satisfies the sufficient condition at every point of a
// gridSide×gridSide grid — and therefore full-view covers those points.
// Greedy set cover: within a ln(elements) factor of the optimal subset.
// Returns camera indices in selection order.
func MinimalCover(net *sensor.Network, theta float64, gridSide int) ([]int, error) {
	inst, _, _, err := buildInstance(net, theta, gridSide)
	if err != nil {
		return nil, err
	}
	return greedyCover(inst, nil)
}

// Shifts partitions cameras into disjoint activation shifts, each of
// which satisfies the sufficient condition on the grid. The network can
// run one shift at a time, multiplying its lifetime by the number of
// shifts. Greedy: carve minimal covers out of the remaining cameras
// until no feasible cover is left. Returns at least zero shifts; a
// network that cannot cover even once yields ErrInfeasible.
func Shifts(net *sensor.Network, theta float64, gridSide int) ([][]int, error) {
	inst, _, _, err := buildInstance(net, theta, gridSide)
	if err != nil {
		return nil, err
	}
	allowed := make([]bool, net.Len())
	for i := range allowed {
		allowed[i] = true
	}
	var shifts [][]int
	for {
		cover, err := greedyCover(inst, allowed)
		if errors.Is(err, ErrInfeasible) {
			break
		}
		if err != nil {
			return nil, err
		}
		shifts = append(shifts, cover)
		for _, ci := range cover {
			allowed[ci] = false
		}
	}
	if len(shifts) == 0 {
		return nil, ErrInfeasible
	}
	return shifts, nil
}

// Subnetwork materializes the network consisting of the given camera
// indices.
func Subnetwork(net *sensor.Network, indices []int) (*sensor.Network, error) {
	cams := make([]sensor.Camera, 0, len(indices))
	for _, ci := range indices {
		if ci < 0 || ci >= net.Len() {
			return nil, fmt.Errorf("schedule: camera index %d out of range [0, %d)", ci, net.Len())
		}
		cams = append(cams, net.Camera(ci))
	}
	return sensor.NewNetwork(net.Torus(), cams)
}
