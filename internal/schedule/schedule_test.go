package schedule

import (
	"errors"
	"math"
	"testing"

	"fullview/internal/core"
	"fullview/internal/deploy"
	"fullview/internal/geom"
	"fullview/internal/rng"
	"fullview/internal/sensor"
)

func overProvisioned(t *testing.T, n int, seed uint64) *sensor.Network {
	t.Helper()
	profile, err := sensor.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := deploy.Uniform(geom.UnitTorus, profile, n, rng.New(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestMinimalCoverValidation(t *testing.T) {
	net := overProvisioned(t, 10, 1)
	if _, err := MinimalCover(net, 0, 10); !errors.Is(err, ErrBadTheta) {
		t.Errorf("error = %v, want ErrBadTheta", err)
	}
	if _, err := MinimalCover(net, math.Pi/4, 0); !errors.Is(err, ErrBadGridSide) {
		t.Errorf("error = %v, want ErrBadGridSide", err)
	}
}

func TestMinimalCoverInfeasibleWhenSparse(t *testing.T) {
	net := overProvisioned(t, 5, 2)
	if _, err := MinimalCover(net, math.Pi/4, 15); !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

func TestMinimalCoverShrinksAndCovers(t *testing.T) {
	theta := math.Pi / 2
	const gridSide = 12
	net := overProvisioned(t, 3000, 3)
	cover, err := MinimalCover(net, theta, gridSide)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) == 0 || len(cover) >= net.Len()/4 {
		t.Fatalf("cover size %d of %d cameras — expected a drastic reduction", len(cover), net.Len())
	}
	// No duplicates.
	seen := make(map[int]bool, len(cover))
	for _, ci := range cover {
		if ci < 0 || ci >= net.Len() || seen[ci] {
			t.Fatalf("invalid selection %v", cover)
		}
		seen[ci] = true
	}
	// The selected subnetwork really full-view covers the grid: the
	// sufficient condition is a certificate.
	sub, err := Subnetwork(net, cover)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := core.NewChecker(sub, theta)
	if err != nil {
		t.Fatal(err)
	}
	points, err := deploy.GridPoints(geom.UnitTorus, gridSide)
	if err != nil {
		t.Fatal(err)
	}
	stats := checker.SurveyRegion(points)
	if !stats.AllSufficient() {
		t.Errorf("selected subset violates the sufficient condition: %d/%d",
			stats.Sufficient, stats.Points)
	}
	if !stats.AllFullView() {
		t.Errorf("selected subset does not full-view cover the grid: %d/%d",
			stats.FullView, stats.Points)
	}
}

func TestMinimalCoverDeterministic(t *testing.T) {
	net := overProvisioned(t, 1000, 4)
	a, err := MinimalCover(net, math.Pi/2, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinimalCover(net, math.Pi/2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("selections differ at %d", i)
		}
	}
}

func TestShiftsDisjointAndEachCovers(t *testing.T) {
	theta := math.Pi / 2
	const gridSide = 10
	net := overProvisioned(t, 3000, 5)
	shifts, err := Shifts(net, theta, gridSide)
	if err != nil {
		t.Fatal(err)
	}
	if len(shifts) < 2 {
		t.Fatalf("got %d shifts from a heavily over-provisioned network", len(shifts))
	}
	points, err := deploy.GridPoints(geom.UnitTorus, gridSide)
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int]bool)
	for si, shift := range shifts {
		for _, ci := range shift {
			if used[ci] {
				t.Fatalf("camera %d appears in two shifts", ci)
			}
			used[ci] = true
		}
		sub, err := Subnetwork(net, shift)
		if err != nil {
			t.Fatal(err)
		}
		checker, err := core.NewChecker(sub, theta)
		if err != nil {
			t.Fatal(err)
		}
		if stats := checker.SurveyRegion(points); !stats.AllFullView() {
			t.Errorf("shift %d does not full-view cover the grid", si)
		}
	}
}

func TestShiftsInfeasibleNetwork(t *testing.T) {
	net := overProvisioned(t, 5, 6)
	if _, err := Shifts(net, math.Pi/4, 15); !errors.Is(err, ErrInfeasible) {
		t.Errorf("error = %v, want ErrInfeasible", err)
	}
}

func TestSubnetworkValidation(t *testing.T) {
	net := overProvisioned(t, 10, 7)
	if _, err := Subnetwork(net, []int{0, 11}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := Subnetwork(net, []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
	sub, err := Subnetwork(net, []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Errorf("subnetwork size = %d", sub.Len())
	}
	if sub.Camera(0) != net.Camera(3) || sub.Camera(1) != net.Camera(7) {
		t.Error("subnetwork cameras do not match the selected indices")
	}
}

func TestMinimalCoverSmallerThetaNeedsMoreCameras(t *testing.T) {
	net := overProvisioned(t, 4000, 8)
	big, err := MinimalCover(net, math.Pi/2, 8)
	if err != nil {
		t.Fatal(err)
	}
	small, err := MinimalCover(net, math.Pi/4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) <= len(big) {
		t.Errorf("θ=π/4 cover (%d) should exceed θ=π/2 cover (%d)", len(small), len(big))
	}
}
