package geom

import (
	"errors"
	"fmt"
)

// ErrBadSectorWidth reports a sector width outside (0, 2π].
var ErrBadSectorWidth = errors.New("geom: sector width must be in (0, 2π]")

// Sector is a closed angular sector [Start, Start+Width] on the circle of
// directions. Start is normalized to [0, 2π); Width is in (0, 2π].
//
// Sectors model the paper's T_j constructions (Figures 4 and 6): the
// circle of viewed directions around a point is partitioned into sectors
// and each sector must contain at least one covering sensor.
type Sector struct {
	Start float64
	Width float64
}

// NewSector returns the closed sector starting at start (any angle,
// normalized internally) spanning width radians counter-clockwise.
func NewSector(start, width float64) (Sector, error) {
	if !(width > 0) || width > TwoPi {
		return Sector{}, fmt.Errorf("%w: got %v", ErrBadSectorWidth, width)
	}
	return Sector{Start: NormalizeAngle(start), Width: width}, nil
}

// SectorAround returns the sector of the given width whose angular
// bisector is center. This mirrors the paper's extra sector T_{k+1},
// re-centred on the bisector of the remainder sector T_α.
func SectorAround(center, width float64) (Sector, error) {
	return NewSector(center-width/2, width)
}

// End returns the end angle of the sector, normalized to [0, 2π).
func (s Sector) End() float64 { return NormalizeAngle(s.Start + s.Width) }

// Bisector returns the angular bisector of the sector, in [0, 2π).
func (s Sector) Bisector() float64 {
	return NormalizeAngle(s.Start + s.Width/2)
}

// Contains reports whether direction a lies inside the closed sector.
func (s Sector) Contains(a float64) bool {
	if s.Width >= TwoPi {
		return true
	}
	return CCWDelta(a, s.Start) <= s.Width
}

// String implements fmt.Stringer.
func (s Sector) String() string {
	return fmt.Sprintf("[%.6g, %.6g)", s.Start, s.Start+s.Width)
}

// AnchoredPartition builds the paper's anchored sector construction for a
// sector width w: full sectors T_1, T_2, … of width w starting at the
// start line (angle 0), and — when w does not divide 2π exactly — one
// extra sector of width w centred on the bisector of the remainder sector
// T_α (α ∈ (0, w)).
//
// For the necessary condition w = 2θ, giving ⌈π/θ⌉ sectors; for the
// sufficient condition w = θ, giving ⌈2π/θ⌉ sectors.
func AnchoredPartition(w float64) ([]Sector, error) {
	if !(w > 0) || w > TwoPi {
		return nil, fmt.Errorf("%w: got %v", ErrBadSectorWidth, w)
	}
	full, alpha := splitCircle(w)
	sectors := make([]Sector, 0, full+1)
	for j := 0; j < full; j++ {
		sectors = append(sectors, Sector{Start: NormalizeAngle(float64(j) * w), Width: w})
	}
	if alpha > 0 {
		// Bisector of the remainder T_α = [full·w, 2π).
		center := NormalizeAngle(float64(full)*w + alpha/2)
		extra, err := SectorAround(center, w)
		if err != nil {
			return nil, err
		}
		sectors = append(sectors, extra)
	}
	return sectors, nil
}

// SectorCount returns the number of sectors AnchoredPartition produces
// for width w: ⌈2π/w⌉ computed robustly against floating-point noise at
// exact divisors (e.g. w = π/4).
func SectorCount(w float64) int {
	full, alpha := splitCircle(w)
	if alpha > 0 {
		return full + 1
	}
	return full
}

// SplitCircle reports the decomposition AnchoredPartition(w) uses: the
// circle holds `full` whole sectors of width w plus a remainder alpha ∈
// [0, w) (zero when w divides 2π exactly, up to floating-point noise).
// When alpha > 0, AnchoredPartition(w) returns full+1 sectors and the
// last one is the re-centred remainder sector; otherwise it returns
// exactly the full sectors, whose j-th Start is NormalizeAngle(j·w).
func SplitCircle(w float64) (full int, alpha float64) {
	return splitCircle(w)
}

// splitCircle decomposes the circle into `full` whole sectors of width w
// plus a remainder alpha ∈ [0, w). A remainder smaller than circleEps is
// treated as zero so that exact divisors of 2π are not perturbed by
// floating-point rounding.
func splitCircle(w float64) (full int, alpha float64) {
	const circleEps = 1e-9
	q := TwoPi / w
	full = int(q)
	alpha = TwoPi - float64(full)*w
	if alpha < circleEps {
		alpha = 0
	}
	// Guard against q itself rounding just below an integer
	// (e.g. 2π/(π/4) = 7.9999999999…).
	if w-alpha < circleEps && alpha > 0 {
		full++
		alpha = 0
	}
	return full, alpha
}
