package geom

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewTorus(t *testing.T) {
	tests := []struct {
		name    string
		side    float64
		wantErr bool
	}{
		{name: "unit", side: 1},
		{name: "large", side: 100},
		{name: "zero", side: 0, wantErr: true},
		{name: "negative", side: -1, wantErr: true},
		{name: "nan", side: math.NaN(), wantErr: true},
		{name: "inf", side: math.Inf(1), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tor, err := NewTorus(tt.side)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("NewTorus(%v) succeeded, want error", tt.side)
				}
				if !errors.Is(err, ErrNonPositiveSide) {
					t.Errorf("error = %v, want ErrNonPositiveSide", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewTorus(%v) error: %v", tt.side, err)
			}
			if tor.Side() != tt.side {
				t.Errorf("Side = %v, want %v", tor.Side(), tt.side)
			}
			if tor.Area() != tt.side*tt.side {
				t.Errorf("Area = %v", tor.Area())
			}
		})
	}
}

func TestUnitTorusWrap(t *testing.T) {
	tests := []struct {
		name string
		give Vec
		want Vec
	}{
		{name: "inside", give: V(0.3, 0.7), want: V(0.3, 0.7)},
		{name: "right edge", give: V(1, 0.5), want: V(0, 0.5)},
		{name: "beyond right", give: V(1.25, 0.5), want: V(0.25, 0.5)},
		{name: "negative", give: V(-0.25, -0.5), want: V(0.75, 0.5)},
		{name: "far away", give: V(5.5, -3.25), want: V(0.5, 0.75)},
		{name: "origin", give: V(0, 0), want: V(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := UnitTorus.Wrap(tt.give)
			if !almostEqual(got.X, tt.want.X, eps) || !almostEqual(got.Y, tt.want.Y, eps) {
				t.Errorf("Wrap(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestWrapRangeProperty(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		p := UnitTorus.Wrap(V(x, y))
		return p.X >= 0 && p.X < 1 && p.Y >= 0 && p.Y < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusDelta(t *testing.T) {
	tests := []struct {
		name     string
		from, to Vec
		want     Vec
	}{
		{name: "direct", from: V(0.2, 0.2), to: V(0.4, 0.3), want: V(0.2, 0.1)},
		{name: "wrap x", from: V(0.9, 0.5), to: V(0.1, 0.5), want: V(0.2, 0)},
		{name: "wrap y negative", from: V(0.5, 0.1), to: V(0.5, 0.9), want: V(0, -0.2)},
		{name: "both wrap", from: V(0.95, 0.95), to: V(0.05, 0.05), want: V(0.1, 0.1)},
		{name: "identical", from: V(0.5, 0.5), to: V(0.5, 0.5), want: V(0, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := UnitTorus.Delta(tt.from, tt.to)
			if !almostEqual(got.X, tt.want.X, eps) || !almostEqual(got.Y, tt.want.Y, eps) {
				t.Errorf("Delta(%v, %v) = %v, want %v", tt.from, tt.to, got, tt.want)
			}
		})
	}
}

func TestTorusDist(t *testing.T) {
	if got := UnitTorus.Dist(V(0.9, 0.5), V(0.1, 0.5)); !almostEqual(got, 0.2, eps) {
		t.Errorf("wrap-around Dist = %v, want 0.2", got)
	}
	if got := UnitTorus.Dist2(V(0.9, 0.5), V(0.1, 0.5)); !almostEqual(got, 0.04, eps) {
		t.Errorf("wrap-around Dist2 = %v, want 0.04", got)
	}
}

func TestTorusDistProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0.25
		}
		return v
	}
	symmetric := func(ax, ay, bx, by float64) bool {
		a := UnitTorus.Wrap(V(clamp(ax), clamp(ay)))
		b := UnitTorus.Wrap(V(clamp(bx), clamp(by)))
		return almostEqual(UnitTorus.Dist(a, b), UnitTorus.Dist(b, a), 1e-12)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	bounded := func(ax, ay, bx, by float64) bool {
		a := UnitTorus.Wrap(V(clamp(ax), clamp(ay)))
		b := UnitTorus.Wrap(V(clamp(bx), clamp(by)))
		d := UnitTorus.Dist(a, b)
		return d >= 0 && d <= UnitTorus.MaxDist()+eps
	}
	if err := quick.Check(bounded, cfg); err != nil {
		t.Errorf("bounds: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		a := UnitTorus.Wrap(V(clamp(ax), clamp(ay)))
		b := UnitTorus.Wrap(V(clamp(bx), clamp(by)))
		c := UnitTorus.Wrap(V(clamp(cx), clamp(cy)))
		return UnitTorus.Dist(a, c) <= UnitTorus.Dist(a, b)+UnitTorus.Dist(b, c)+1e-12
	}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	translationInvariant := func(ax, ay, bx, by, dx, dy float64) bool {
		a := UnitTorus.Wrap(V(clamp(ax), clamp(ay)))
		b := UnitTorus.Wrap(V(clamp(bx), clamp(by)))
		d := V(clamp(dx), clamp(dy))
		return almostEqual(
			UnitTorus.Dist(a, b),
			UnitTorus.Dist(UnitTorus.Translate(a, d), UnitTorus.Translate(b, d)),
			1e-9,
		)
	}
	if err := quick.Check(translationInvariant, cfg); err != nil {
		t.Errorf("translation invariance: %v", err)
	}
}

func TestTorusMaxDist(t *testing.T) {
	want := math.Sqrt2 / 2
	if got := UnitTorus.MaxDist(); !almostEqual(got, want, eps) {
		t.Errorf("MaxDist = %v, want %v", got, want)
	}
	// The two most distant points on the unit torus are (0,0) and (0.5,0.5).
	if got := UnitTorus.Dist(V(0, 0), V(0.5, 0.5)); !almostEqual(got, want, eps) {
		t.Errorf("Dist to antipode = %v, want %v", got, want)
	}
}

func TestTorusDeltaConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax + ay + bx + by) {
			return true
		}
		a := UnitTorus.Wrap(V(ax, ay))
		b := UnitTorus.Wrap(V(bx, by))
		return almostEqual(UnitTorus.Delta(a, b).Norm(), UnitTorus.Dist(a, b), eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaledTorus(t *testing.T) {
	tor, err := NewTorus(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := tor.Dist(V(9.5, 5), V(0.5, 5)); !almostEqual(got, 1, eps) {
		t.Errorf("scaled torus wrap Dist = %v, want 1", got)
	}
	if got := tor.Wrap(V(-1, 12)); !almostEqual(got.X, 9, eps) || !almostEqual(got.Y, 2, eps) {
		t.Errorf("scaled torus Wrap = %v", got)
	}
}
