package geom

import (
	"math"
	"math/rand"
	"testing"
)

// bruteMinDepth samples the circle densely and at interval midpoints to
// approximate the minimum closed-arc coverage depth.
func bruteMinDepth(centers []float64, halfWidth float64) int {
	if len(centers) == 0 {
		return 0
	}
	depthAt := func(x float64) int {
		d := 0
		for _, c := range centers {
			if halfWidth >= math.Pi || AngularDistance(x, c) <= halfWidth {
				d++
			}
		}
		return d
	}
	// Candidate minima: midpoints between all pairs of arc endpoints plus
	// a dense sample.
	min := len(centers)
	var endpoints []float64
	for _, c := range centers {
		endpoints = append(endpoints, NormalizeAngle(c-halfWidth), NormalizeAngle(c+halfWidth))
	}
	sorted := SortAngles(endpoints)
	for i := range sorted {
		next := sorted[(i+1)%len(sorted)]
		gap := NormalizeAngle(next - sorted[i])
		if gap == 0 {
			gap = TwoPi
		}
		if d := depthAt(NormalizeAngle(sorted[i] + gap/2)); d < min {
			min = d
		}
	}
	for i := 0; i < 720; i++ {
		if d := depthAt(TwoPi * float64(i) / 720); d < min {
			min = d
		}
	}
	return min
}

func TestMinArcCoverageDepthEmpty(t *testing.T) {
	depth, witness := MinArcCoverageDepth(nil, 1)
	if depth != 0 || witness != 0 {
		t.Errorf("empty: depth=%d witness=%v", depth, witness)
	}
}

func TestMinArcCoverageDepthCases(t *testing.T) {
	tests := []struct {
		name      string
		centers   []float64
		halfWidth float64
		want      int
	}{
		{
			name:      "single narrow arc leaves zero",
			centers:   []float64{0},
			halfWidth: math.Pi / 4,
			want:      0,
		},
		{
			name:      "single full-circle arc",
			centers:   []float64{1},
			halfWidth: math.Pi,
			want:      1,
		},
		{
			name:      "square with theta exactly quarter covers once",
			centers:   []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2},
			halfWidth: math.Pi / 4,
			want:      1,
		},
		{
			name:      "square with tighter theta leaves gaps",
			centers:   []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2},
			halfWidth: math.Pi / 8,
			want:      0,
		},
		{
			name:      "eight cameras double-cover at quarter",
			centers:   []float64{0, math.Pi / 4, math.Pi / 2, 3 * math.Pi / 4, math.Pi, 5 * math.Pi / 4, 3 * math.Pi / 2, 7 * math.Pi / 4},
			halfWidth: math.Pi / 4,
			want:      2,
		},
		{
			name:      "three full circles stack",
			centers:   []float64{0, 1, 2},
			halfWidth: math.Pi,
			want:      3,
		},
		{
			name:      "zero half width",
			centers:   []float64{0, 1},
			halfWidth: 0,
			want:      0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			depth, _ := MinArcCoverageDepth(tt.centers, tt.halfWidth)
			if depth != tt.want {
				t.Errorf("depth = %d, want %d", depth, tt.want)
			}
		})
	}
}

func TestMinArcCoverageDepthWitness(t *testing.T) {
	centers := []float64{0, math.Pi / 2, math.Pi}
	halfWidth := math.Pi / 8
	depth, witness := MinArcCoverageDepth(centers, halfWidth)
	if depth != 0 {
		t.Fatalf("depth = %d, want 0", depth)
	}
	// The witness must actually have the reported depth.
	got := 0
	for _, c := range centers {
		if AngularDistance(witness, c) <= halfWidth {
			got++
		}
	}
	if got != depth {
		t.Errorf("witness %v has depth %d, reported %d", witness, got, depth)
	}
}

func TestMinArcCoverageDepthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(15)
		centers := make([]float64, n)
		for i := range centers {
			centers[i] = rng.Float64() * TwoPi
		}
		halfWidth := rng.Float64() * math.Pi
		got, witness := MinArcCoverageDepth(centers, halfWidth)
		want := bruteMinDepth(centers, halfWidth)
		if got != want {
			t.Fatalf("trial %d (n=%d, h=%v): depth %d, brute force %d",
				trial, n, halfWidth, got, want)
		}
		// Witness consistency.
		wd := 0
		for _, c := range centers {
			if halfWidth >= math.Pi || AngularDistance(witness, c) <= halfWidth {
				wd++
			}
		}
		if wd != got {
			t.Fatalf("trial %d: witness depth %d != reported %d", trial, wd, got)
		}
	}
}

// TestDepthConsistentWithMaxGap ties the two primitives together:
// min depth ≥ 1 ⇔ max circular gap ≤ 2·halfWidth.
func TestDepthConsistentWithMaxGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(12)
		centers := make([]float64, n)
		for i := range centers {
			centers[i] = rng.Float64() * TwoPi
		}
		halfWidth := rng.Float64() * math.Pi
		depth, _ := MinArcCoverageDepth(centers, halfWidth)
		gap, _ := MaxCircularGap(centers)
		if (depth >= 1) != (gap <= 2*halfWidth) {
			t.Fatalf("trial %d: depth %d vs gap %v (2h=%v) disagree",
				trial, depth, gap, 2*halfWidth)
		}
	}
}

func TestNegativeHalfWidthClamps(t *testing.T) {
	depth, _ := MinArcCoverageDepth([]float64{1}, -0.5)
	if depth != 0 {
		t.Errorf("depth = %d, want 0", depth)
	}
}
