package geom

import "sort"

// MinArcCoverageDepth computes how deeply a family of closed circular
// arcs covers the circle of directions: each center c spawns the arc
// [c−halfWidth, c+halfWidth], and the depth of a direction is the number
// of arcs containing it. The function returns the minimum depth over all
// directions and a witness direction attaining it.
//
// This generalises the full-view test: with centers = viewed directions
// and halfWidth = θ, a point is full-view covered iff the minimum depth
// is ≥ 1, and it tolerates f camera failures iff the depth is ≥ f+1
// (every facing direction keeps a frontal camera after any f losses).
//
// The minimum of a piecewise-constant closed-arc coverage function is
// attained on an open interval between arc endpoints, so the sweep
// evaluates open intervals only. Runs in O(n log n).
func MinArcCoverageDepth(centers []float64, halfWidth float64) (depth int, witness float64) {
	if halfWidth < 0 {
		halfWidth = 0
	}
	if len(centers) == 0 {
		return 0, 0
	}
	// Arcs of half-width ≥ π cover the whole circle.
	base := 0
	type event struct {
		angle float64
		delta int
	}
	events := make([]event, 0, 2*len(centers))
	for _, c := range centers {
		if halfWidth >= TwoPi/2 {
			base++
			continue
		}
		events = append(events,
			event{angle: NormalizeAngle(c - halfWidth), delta: +1},
			event{angle: NormalizeAngle(c + halfWidth), delta: -1},
		)
	}
	if len(events) == 0 {
		return base, 0
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].angle != events[j].angle {
			return events[i].angle < events[j].angle
		}
		// Starts before ends so a shared boundary point never dips.
		return events[i].delta > events[j].delta
	})

	// Depth on the wrap interval (last event angle, first event angle):
	// count arcs containing its midpoint.
	last := events[len(events)-1].angle
	first := events[0].angle
	wrapMid := NormalizeAngle(last + NormalizeAngle(first-last+TwoPi)/2)
	if last == first {
		wrapMid = NormalizeAngle(last + TwoPi/2)
	}
	depthRun := base
	for _, c := range centers {
		if halfWidth < TwoPi/2 && AngularDistance(wrapMid, c) <= halfWidth {
			depthRun++
		}
	}

	minDepth := depthRun
	witness = wrapMid
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].angle == events[i].angle {
			depthRun += events[j].delta
			j++
		}
		// depthRun now holds the depth on the open interval
		// (events[i].angle, nextAngle).
		nextAngle := first + TwoPi
		if j < len(events) {
			nextAngle = events[j].angle
		}
		// Only intervals with a representable interior point count:
		// rounding-noise slivers (endpoints one ulp apart, e.g. when
		// 0.6+0.7 ≠ 1.3−0 exactly) are artefacts of float endpoints,
		// not real gaps, and their midpoint would land on a closed arc
		// boundary anyway.
		mid := events[i].angle + (nextAngle-events[i].angle)/2
		if depthRun < minDepth && mid > events[i].angle && mid < nextAngle {
			minDepth = depthRun
			witness = NormalizeAngle(mid)
		}
		i = j
	}
	return minDepth, witness
}
