// Package geom provides the planar geometry substrate used throughout the
// full-view coverage library: angles on the circle, vectors, the unit torus
// (the paper's boundary-free operational region), angular sectors, and
// circular gap analysis.
//
// All angles are in radians. Angles representing directions are normalized
// to the half-open interval [0, 2π).
package geom

import "math"

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// NormalizeAngle maps an arbitrary angle to the canonical range [0, 2π).
// NaN and ±Inf are returned unchanged.
func NormalizeAngle(a float64) float64 {
	if a > -TwoPi && a < TwoPi {
		// Fast path for the dominant case (atan2 outputs, differences of
		// normalized directions): |a| < 2π makes math.Mod(a, 2π) the
		// identity — the quotient truncates to zero — so the reduction
		// collapses to the two conditional fix-ups below, bit-identical
		// to the general path but without Mod's exponent-walking loop.
		// a = −2π exactly is excluded so its Mod image (−0.0) keeps its
		// sign; NaN fails both comparisons and takes the general path.
		if a < 0 {
			a += TwoPi
		}
		if a >= TwoPi {
			a -= TwoPi
		}
		return a
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return a
	}
	a = math.Mod(a, TwoPi)
	if a < 0 {
		a += TwoPi
	}
	// math.Mod can return TwoPi-epsilon values that round up; guard the
	// boundary so the result is strictly less than 2π.
	if a >= TwoPi {
		a -= TwoPi
	}
	return a
}

// AngularDistance returns the circular distance between two directions,
// the smallest non-negative rotation taking one onto the other.
// The result lies in [0, π].
func AngularDistance(a, b float64) float64 {
	d := math.Abs(NormalizeAngle(a) - NormalizeAngle(b))
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// AngleDiff returns the signed shortest rotation from b to a, in (-π, π].
func AngleDiff(a, b float64) float64 {
	d := NormalizeAngle(a - b)
	if d > math.Pi {
		d -= TwoPi
	}
	return d
}

// CCWDelta returns the counter-clockwise rotation from b to a, in [0, 2π).
func CCWDelta(a, b float64) float64 {
	return NormalizeAngle(a - b)
}

// Degrees converts radians to degrees. It exists for human-facing report
// output only; all internal computation stays in radians.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
