package geom

import (
	"fmt"
	"math"
)

// Vec is a point or displacement in the plane.
type Vec struct {
	X, Y float64
}

// V is shorthand for constructing a Vec.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// FromPolar returns the vector of the given length pointing in direction
// angle (radians, measured counter-clockwise from the positive x-axis).
func FromPolar(length, angle float64) Vec {
	s, c := math.Sincos(angle)
	return Vec{X: length * c, Y: length * s}
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{X: k * v.X, Y: k * v.Y} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{X: -v.X, Y: -v.Y} }

// Dot returns the dot product v · w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z-component of the cross product v × w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v. It avoids the square
// root and is the preferred form for radius comparisons on hot paths.
func (v Vec) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Angle returns the direction of v in [0, 2π). The angle of the zero
// vector is 0 by convention.
func (v Vec) Angle() float64 {
	if v.X == 0 && v.Y == 0 {
		return 0
	}
	return NormalizeAngle(math.Atan2(v.Y, v.X))
}

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// IsZero reports whether both components are exactly zero.
func (v Vec) IsZero() bool { return v.X == 0 && v.Y == 0 }

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.6g, %.6g)", v.X, v.Y) }
