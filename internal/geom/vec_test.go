package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a := V(1, 2)
	b := V(3, -4)

	if got := a.Add(b); got != V(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Dot(b); got != 1*3+2*(-4) {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != 1*(-4)-2*3 {
		t.Errorf("Cross = %v", got)
	}
}

func TestVecNorm(t *testing.T) {
	v := V(3, 4)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	u := v.Unit()
	if !almostEqual(u.Norm(), 1, eps) {
		t.Errorf("Unit().Norm() = %v, want 1", u.Norm())
	}
	if !almostEqual(u.X, 0.6, eps) || !almostEqual(u.Y, 0.8, eps) {
		t.Errorf("Unit = %v", u)
	}
}

func TestVecZero(t *testing.T) {
	var z Vec
	if !z.IsZero() {
		t.Error("zero vector should report IsZero")
	}
	if got := z.Unit(); !got.IsZero() {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
	if got := z.Angle(); got != 0 {
		t.Errorf("Angle of zero = %v, want 0", got)
	}
	if V(1, 0).IsZero() {
		t.Error("non-zero vector reported IsZero")
	}
}

func TestVecAngle(t *testing.T) {
	tests := []struct {
		name string
		give Vec
		want float64
	}{
		{name: "east", give: V(1, 0), want: 0},
		{name: "north", give: V(0, 1), want: math.Pi / 2},
		{name: "west", give: V(-1, 0), want: math.Pi},
		{name: "south", give: V(0, -1), want: 3 * math.Pi / 2},
		{name: "northeast", give: V(1, 1), want: math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Angle(); !almostEqual(got, tt.want, eps) {
				t.Errorf("Angle(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestFromPolarRoundTrip(t *testing.T) {
	f := func(length, angle float64) bool {
		if math.IsNaN(length) || math.IsNaN(angle) ||
			math.Abs(length) > 1e9 || math.Abs(angle) > 1e9 {
			return true
		}
		length = math.Abs(math.Mod(length, 1e6)) + 0.5
		v := FromPolar(length, angle)
		return almostEqual(v.Norm(), length, length*1e-12) &&
			AngularDistance(v.Angle(), angle) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecString(t *testing.T) {
	if got := V(0.5, -1).String(); got != "(0.5, -1)" {
		t.Errorf("String = %q", got)
	}
}
