package geom

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonPositiveSide reports an attempt to construct a torus with a
// non-positive side length.
var ErrNonPositiveSide = errors.New("geom: torus side must be positive")

// Torus is a flat square torus of the given side length. The paper's
// operational region is the unit square "supposed to be a torus so that we
// can ignore the boundary effect"; all deployment and coverage code works
// through this type so the wrap-around metric is applied consistently.
//
// The zero value is not useful; construct with NewTorus or use UnitTorus.
type Torus struct {
	side float64
}

// UnitTorus is the paper's unit-square operational region.
var UnitTorus = Torus{side: 1}

// NewTorus returns a flat square torus with the given side length.
func NewTorus(side float64) (Torus, error) {
	if !(side > 0) || math.IsInf(side, 0) {
		return Torus{}, fmt.Errorf("%w: got %v", ErrNonPositiveSide, side)
	}
	return Torus{side: side}, nil
}

// Side returns the side length of the torus.
func (t Torus) Side() float64 { return t.side }

// Area returns the total area of the torus.
func (t Torus) Area() float64 { return t.side * t.side }

// Wrap maps an arbitrary point to its canonical representative in
// [0, side) × [0, side).
func (t Torus) Wrap(p Vec) Vec {
	return Vec{X: t.wrapCoord(p.X), Y: t.wrapCoord(p.Y)}
}

func (t Torus) wrapCoord(x float64) float64 {
	x = math.Mod(x, t.side)
	if x < 0 {
		x += t.side
	}
	if x >= t.side {
		x -= t.side
	}
	return x
}

// Delta returns the shortest displacement vector taking from to to on the
// torus. Each component lies in [-side/2, side/2).
func (t Torus) Delta(from, to Vec) Vec {
	return Vec{
		X: t.deltaCoord(from.X, to.X),
		Y: t.deltaCoord(from.Y, to.Y),
	}
}

func (t Torus) deltaCoord(a, b float64) float64 {
	d := math.Mod(b-a, t.side)
	half := t.side / 2
	if d < -half {
		d += t.side
	} else if d >= half {
		d -= t.side
	}
	return d
}

// Dist returns the toroidal (wrap-around) Euclidean distance between a
// and b.
func (t Torus) Dist(a, b Vec) float64 {
	return t.Delta(a, b).Norm()
}

// Dist2 returns the squared toroidal distance between a and b.
func (t Torus) Dist2(a, b Vec) float64 {
	return t.Delta(a, b).Norm2()
}

// Translate returns p displaced by d, wrapped back onto the torus.
func (t Torus) Translate(p, d Vec) Vec {
	return t.Wrap(p.Add(d))
}

// MaxDist returns the largest possible toroidal distance between two
// points, side·√2/2.
func (t Torus) MaxDist() float64 {
	return t.side * math.Sqrt2 / 2
}
