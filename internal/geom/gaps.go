package geom

import "sort"

// MaxCircularGap returns the widest angular gap between consecutive
// directions when the given angles are placed on the circle, together
// with the bisector direction of that gap.
//
// This is the primitive behind the exact full-view coverage test: a point
// whose covering sensors sit at viewed directions angles is full-view
// covered with effective angle θ iff MaxCircularGap(angles) ≤ 2θ — the
// bisector of a wider gap is an unsafe facing direction (paper, Section
// III-A).
//
// For an empty input the gap is the whole circle (2π) with bisector 0.
// For a single direction a the gap is 2π with bisector opposite a.
// The input slice is not modified.
func MaxCircularGap(angles []float64) (gap, bisector float64) {
	switch len(angles) {
	case 0:
		return TwoPi, 0
	case 1:
		return TwoPi, NormalizeAngle(angles[0] + TwoPi/2)
	}
	sorted := make([]float64, len(angles))
	for i, a := range angles {
		sorted[i] = NormalizeAngle(a)
	}
	sort.Float64s(sorted)

	// Start from the wrap-around gap (last angle back to the first).
	gapStart := sorted[len(sorted)-1]
	gap = sorted[0] + TwoPi - sorted[len(sorted)-1]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > gap {
			gap = g
			gapStart = sorted[i-1]
		}
	}
	return gap, NormalizeAngle(gapStart + gap/2)
}

// SortAngles returns a new slice with the angles normalized to [0, 2π)
// and sorted ascending.
func SortAngles(angles []float64) []float64 {
	out := make([]float64, len(angles))
	for i, a := range angles {
		out[i] = NormalizeAngle(a)
	}
	sort.Float64s(out)
	return out
}

// CoversAllDirections reports whether every direction on the circle is
// within tolerance θ of at least one of the given directions — i.e.
// whether the directions θ-cover the circle. Equivalent to
// MaxCircularGap(angles) ≤ 2θ.
func CoversAllDirections(angles []float64, theta float64) bool {
	if len(angles) == 0 {
		return false
	}
	gap, _ := MaxCircularGap(angles)
	return gap <= 2*theta
}
