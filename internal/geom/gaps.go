package geom

import (
	"slices"
	"sort"
)

// MaxCircularGap returns the widest angular gap between consecutive
// directions when the given angles are placed on the circle, together
// with the bisector direction of that gap.
//
// This is the primitive behind the exact full-view coverage test: a point
// whose covering sensors sit at viewed directions angles is full-view
// covered with effective angle θ iff MaxCircularGap(angles) ≤ 2θ — the
// bisector of a wider gap is an unsafe facing direction (paper, Section
// III-A).
//
// For an empty input the gap is the whole circle (2π) with bisector 0.
// For a single direction a the gap is 2π with bisector opposite a.
// The input slice is not modified.
func MaxCircularGap(angles []float64) (gap, bisector float64) {
	switch len(angles) {
	case 0:
		return TwoPi, 0
	case 1:
		return TwoPi, NormalizeAngle(angles[0] + TwoPi/2)
	}
	sorted := make([]float64, len(angles))
	for i, a := range angles {
		sorted[i] = NormalizeAngle(a)
	}
	sort.Float64s(sorted)
	return gapScanSorted(sorted)
}

// MaxCircularGapInPlace is MaxCircularGap without the defensive copy: it
// normalizes and sorts angles in place and allocates nothing, making it
// the right primitive for per-point hot loops that own a reusable
// direction buffer. Results are bit-identical to MaxCircularGap for
// finite inputs; angles must not contain NaN or ±Inf (unlike
// MaxCircularGap, whose sort tolerates them).
func MaxCircularGapInPlace(angles []float64) (gap, bisector float64) {
	switch len(angles) {
	case 0:
		return TwoPi, 0
	case 1:
		return TwoPi, NormalizeAngle(angles[0] + TwoPi/2)
	}
	for i, a := range angles {
		// The common case — atan2 output in (−π, π] — normalizes with one
		// branch and one add; math.Mod is the identity on (−2π, 2π), so
		// this matches NormalizeAngle bit for bit.
		if a >= 0 {
			if a < TwoPi {
				continue
			}
			angles[i] = NormalizeAngle(a)
			continue
		}
		if a > -TwoPi {
			a += TwoPi
			if a >= TwoPi { // −ε + 2π can round up to exactly 2π
				a -= TwoPi
			}
			angles[i] = a
			continue
		}
		angles[i] = NormalizeAngle(a)
	}
	slices.Sort(angles)
	return gapScanSorted(angles)
}

// gapScanSorted finds the widest gap of at least two normalized, sorted
// angles, starting from the wrap-around gap (last angle back to the
// first).
func gapScanSorted(sorted []float64) (gap, bisector float64) {
	gapStart := sorted[len(sorted)-1]
	gap = sorted[0] + TwoPi - sorted[len(sorted)-1]
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > gap {
			gap = g
			gapStart = sorted[i-1]
		}
	}
	return gap, NormalizeAngle(gapStart + gap/2)
}

// SortAngles returns a new slice with the angles normalized to [0, 2π)
// and sorted ascending.
func SortAngles(angles []float64) []float64 {
	out := make([]float64, len(angles))
	for i, a := range angles {
		out[i] = NormalizeAngle(a)
	}
	sort.Float64s(out)
	return out
}

// CoversAllDirections reports whether every direction on the circle is
// within tolerance θ of at least one of the given directions — i.e.
// whether the directions θ-cover the circle. Equivalent to
// MaxCircularGap(angles) ≤ 2θ.
func CoversAllDirections(angles []float64, theta float64) bool {
	if len(angles) == 0 {
		return false
	}
	gap, _ := MaxCircularGap(angles)
	return gap <= 2*theta
}
