package geom

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewSector(t *testing.T) {
	tests := []struct {
		name    string
		start   float64
		width   float64
		wantErr bool
	}{
		{name: "quarter", start: 0, width: math.Pi / 2},
		{name: "full circle", start: 1, width: TwoPi},
		{name: "negative start normalizes", start: -math.Pi / 2, width: 1},
		{name: "zero width", start: 0, width: 0, wantErr: true},
		{name: "negative width", start: 0, width: -1, wantErr: true},
		{name: "too wide", start: 0, width: TwoPi + 0.1, wantErr: true},
		{name: "nan width", start: 0, width: math.NaN(), wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := NewSector(tt.start, tt.width)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("NewSector(%v, %v) succeeded, want error", tt.start, tt.width)
				}
				if !errors.Is(err, ErrBadSectorWidth) {
					t.Errorf("error = %v, want ErrBadSectorWidth", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewSector error: %v", err)
			}
			if s.Start < 0 || s.Start >= TwoPi {
				t.Errorf("Start %v not normalized", s.Start)
			}
		})
	}
}

func TestSectorContains(t *testing.T) {
	quarter, err := NewSector(0, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	wrapping, err := NewSector(7*math.Pi/4, math.Pi/2) // spans 315°..45°
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		sector Sector
		angle  float64
		want   bool
	}{
		{name: "start inclusive", sector: quarter, angle: 0, want: true},
		{name: "interior", sector: quarter, angle: math.Pi / 4, want: true},
		{name: "end inclusive", sector: quarter, angle: math.Pi / 2, want: true},
		{name: "outside", sector: quarter, angle: math.Pi, want: false},
		{name: "just outside end", sector: quarter, angle: math.Pi/2 + 0.01, want: false},
		{name: "wrapping interior before zero", sector: wrapping, angle: TwoPi - 0.1, want: true},
		{name: "wrapping interior after zero", sector: wrapping, angle: 0.1, want: true},
		{name: "wrapping outside", sector: wrapping, angle: math.Pi, want: false},
		{name: "unnormalized angle", sector: quarter, angle: TwoPi + math.Pi/4, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.sector.Contains(tt.angle); got != tt.want {
				t.Errorf("%v.Contains(%v) = %v, want %v", tt.sector, tt.angle, got, tt.want)
			}
		})
	}
}

func TestFullCircleSectorContainsEverything(t *testing.T) {
	full, err := NewSector(1.234, TwoPi)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		return full.Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSectorBisectorEnd(t *testing.T) {
	s, err := NewSector(math.Pi/2, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Bisector(); !almostEqual(got, math.Pi, eps) {
		t.Errorf("Bisector = %v, want π", got)
	}
	if got := s.End(); !almostEqual(got, 3*math.Pi/2, eps) {
		t.Errorf("End = %v, want 3π/2", got)
	}
	// A wrapping sector's bisector also wraps.
	w, err := NewSector(7*math.Pi/4, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Bisector(); !almostEqual(got, 0, eps) {
		t.Errorf("wrapping Bisector = %v, want 0", got)
	}
}

func TestSectorAround(t *testing.T) {
	s, err := SectorAround(math.Pi, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Bisector(); !almostEqual(got, math.Pi, eps) {
		t.Errorf("Bisector = %v, want π", got)
	}
	if !s.Contains(math.Pi) {
		t.Error("sector should contain its own center")
	}
	if s.Contains(0) {
		t.Error("sector should not contain the opposite direction")
	}
}

func TestAnchoredPartitionExactDivisor(t *testing.T) {
	// width π/2 divides 2π exactly: 4 sectors, no extra.
	sectors, err := AnchoredPartition(math.Pi / 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sectors) != 4 {
		t.Fatalf("got %d sectors, want 4", len(sectors))
	}
	for j, s := range sectors {
		wantStart := float64(j) * math.Pi / 2
		if !almostEqual(s.Start, wantStart, 1e-9) {
			t.Errorf("sector %d Start = %v, want %v", j, s.Start, wantStart)
		}
		if !almostEqual(s.Width, math.Pi/2, eps) {
			t.Errorf("sector %d Width = %v", j, s.Width)
		}
	}
}

func TestAnchoredPartitionWithRemainder(t *testing.T) {
	// width 2θ with θ = 0.3π: 2π/(0.6π) = 3.33…, so 3 full sectors plus
	// one extra re-centred on the remainder.
	w := 0.6 * math.Pi
	sectors, err := AnchoredPartition(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(sectors) != 4 {
		t.Fatalf("got %d sectors, want 4", len(sectors))
	}
	extra := sectors[3]
	alpha := TwoPi - 3*w
	wantCenter := NormalizeAngle(3*w + alpha/2)
	if !almostEqual(extra.Bisector(), wantCenter, 1e-9) {
		t.Errorf("extra sector bisector = %v, want %v", extra.Bisector(), wantCenter)
	}
	if !almostEqual(extra.Width, w, eps) {
		t.Errorf("extra sector width = %v, want %v", extra.Width, w)
	}
}

func TestAnchoredPartitionCoversCircle(t *testing.T) {
	widths := []float64{0.1, math.Pi / 3, math.Pi / 2, 1.0, 2.5, math.Pi, TwoPi}
	for _, w := range widths {
		sectors, err := AnchoredPartition(w)
		if err != nil {
			t.Fatalf("width %v: %v", w, err)
		}
		// Sample directions densely; every direction must be in ≥1 sector.
		for i := 0; i < 1000; i++ {
			a := TwoPi * float64(i) / 1000
			found := false
			for _, s := range sectors {
				if s.Contains(a) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("width %v: direction %v in no sector", w, a)
			}
		}
	}
}

func TestAnchoredPartitionBadWidth(t *testing.T) {
	for _, w := range []float64{0, -1, TwoPi + 1, math.NaN()} {
		if _, err := AnchoredPartition(w); err == nil {
			t.Errorf("AnchoredPartition(%v) succeeded, want error", w)
		}
	}
}

func TestSectorCount(t *testing.T) {
	tests := []struct {
		name  string
		width float64
		want  int
	}{
		{name: "quarter divides exactly", width: math.Pi / 2, want: 4},
		{name: "pi divides exactly", width: math.Pi, want: 2},
		{name: "full circle", width: TwoPi, want: 1},
		{name: "remainder adds one", width: 0.6 * math.Pi, want: 4},
		{name: "theta pi over four necessary", width: math.Pi / 2, want: 4},
		{name: "floating point near divisor", width: TwoPi / 8, want: 8},
		{name: "tiny width", width: TwoPi / 1000, want: 1000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SectorCount(tt.width); got != tt.want {
				t.Errorf("SectorCount(%v) = %d, want %d", tt.width, got, tt.want)
			}
		})
	}
}

func TestSectorCountMatchesPartitionLength(t *testing.T) {
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		w := math.Mod(math.Abs(raw), TwoPi-0.02) + 0.01
		sectors, err := AnchoredPartition(w)
		if err != nil {
			return false
		}
		return len(sectors) == SectorCount(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
