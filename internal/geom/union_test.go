package geom

import (
	"math"
	"math/rand"
	"testing"
)

// bruteUnionLength estimates the union measure by dense sampling.
func bruteUnionLength(centers []float64, halfWidth float64) float64 {
	const samples = 200000
	hits := 0
	for i := 0; i < samples; i++ {
		x := TwoPi * float64(i) / samples
		for _, c := range centers {
			if AngularDistance(x, c) <= halfWidth {
				hits++
				break
			}
		}
	}
	return TwoPi * float64(hits) / samples
}

func TestArcUnionLengthCases(t *testing.T) {
	tests := []struct {
		name      string
		centers   []float64
		halfWidth float64
		want      float64
	}{
		{name: "empty", centers: nil, halfWidth: 1, want: 0},
		{name: "zero width", centers: []float64{1}, halfWidth: 0, want: 0},
		{name: "single arc", centers: []float64{1}, halfWidth: 0.5, want: 1},
		{name: "half-circle arcs at poles", centers: []float64{0, math.Pi}, halfWidth: math.Pi / 2, want: TwoPi},
		{name: "two disjoint arcs", centers: []float64{0, math.Pi}, halfWidth: 0.25, want: 1},
		{name: "two overlapping arcs", centers: []float64{0, 0.5}, halfWidth: 0.5, want: 1.5},
		{name: "duplicate centers", centers: []float64{1, 1, 1}, halfWidth: 0.3, want: 0.6},
		{name: "full circle via wide arc", centers: []float64{2}, halfWidth: math.Pi, want: TwoPi},
		{name: "arc wrapping origin", centers: []float64{0.1}, halfWidth: 0.3, want: 0.6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ArcUnionLength(tt.centers, tt.halfWidth)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("ArcUnionLength = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestArcUnionLengthMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		centers := make([]float64, n)
		for i := range centers {
			centers[i] = rng.Float64() * TwoPi
		}
		halfWidth := rng.Float64() * math.Pi
		got := ArcUnionLength(centers, halfWidth)
		want := bruteUnionLength(centers, halfWidth)
		if math.Abs(got-want) > 0.001 {
			t.Fatalf("trial %d (n=%d h=%v): union %v, brute %v", trial, n, halfWidth, got, want)
		}
	}
}

func TestArcUnionConsistentWithDepthAndGap(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		centers := make([]float64, n)
		for i := range centers {
			centers[i] = rng.Float64() * TwoPi
		}
		halfWidth := rng.Float64() * (math.Pi - 0.01)
		union := ArcUnionLength(centers, halfWidth)
		depth, _ := MinArcCoverageDepth(centers, halfWidth)
		gap, _ := MaxCircularGap(centers)
		// Full-circle union ⇔ min depth ≥ 1 ⇔ gap ≤ 2·halfWidth
		// (away from float boundary noise).
		if math.Abs(gap-2*halfWidth) < 1e-9 {
			continue
		}
		fullByUnion := union >= TwoPi-1e-9
		if fullByUnion != (depth >= 1) {
			t.Fatalf("trial %d: union %v vs depth %d disagree", trial, union, depth)
		}
		// Union bounded by sum of arc lengths.
		if union > float64(n)*2*halfWidth+1e-9 {
			t.Fatalf("trial %d: union %v exceeds total arc length", trial, union)
		}
	}
}
