package geom

import "sort"

// ArcUnionLength returns the total length of the union of closed arcs
// [c−halfWidth, c+halfWidth] on the circle, in radians (≤ 2π).
//
// With centers = viewed directions and halfWidth = θ this measures the
// paper's *safe* directions (Definition 1): the set of facing directions
// within θ of some covering camera. A point is full-view covered exactly
// when the union is the whole circle.
//
// Implementation: the same start/end event sweep as MinArcCoverageDepth,
// accumulating the lengths of intervals where the coverage depth is at
// least one.
func ArcUnionLength(centers []float64, halfWidth float64) float64 {
	if len(centers) == 0 || halfWidth <= 0 {
		return 0
	}
	if halfWidth >= TwoPi/2 {
		return TwoPi
	}
	type event struct {
		angle float64
		delta int
	}
	events := make([]event, 0, 2*len(centers))
	for _, c := range centers {
		events = append(events,
			event{angle: NormalizeAngle(c - halfWidth), delta: +1},
			event{angle: NormalizeAngle(c + halfWidth), delta: -1},
		)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].angle != events[j].angle {
			return events[i].angle < events[j].angle
		}
		return events[i].delta > events[j].delta
	})

	// Initialize depth on the wrap interval (last event angle → first
	// event angle); the sweep's final interval re-visits and counts it.
	first := events[0].angle
	last := events[len(events)-1].angle
	wrapLen := NormalizeAngle(first - last)
	if wrapLen == 0 {
		wrapLen = TwoPi // all events at a single angle
	}
	wrapMid := NormalizeAngle(last + wrapLen/2)
	depth := 0
	for _, c := range centers {
		if AngularDistance(wrapMid, c) <= halfWidth {
			depth++
		}
	}

	total := 0.0
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].angle == events[i].angle {
			depth += events[j].delta
			j++
		}
		nextAngle := first + TwoPi
		if j < len(events) {
			nextAngle = events[j].angle
		}
		if depth > 0 {
			total += nextAngle - events[i].angle
		}
		i = j
	}
	if total > TwoPi {
		total = TwoPi
	}
	return total
}
