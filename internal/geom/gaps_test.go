package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxCircularGapEmpty(t *testing.T) {
	gap, bisector := MaxCircularGap(nil)
	if gap != TwoPi {
		t.Errorf("gap = %v, want 2π", gap)
	}
	if bisector != 0 {
		t.Errorf("bisector = %v, want 0", bisector)
	}
}

func TestMaxCircularGapSingle(t *testing.T) {
	gap, bisector := MaxCircularGap([]float64{math.Pi / 2})
	if gap != TwoPi {
		t.Errorf("gap = %v, want 2π", gap)
	}
	if !almostEqual(bisector, 3*math.Pi/2, eps) {
		t.Errorf("bisector = %v, want 3π/2 (opposite the angle)", bisector)
	}
}

func TestMaxCircularGapCases(t *testing.T) {
	tests := []struct {
		name         string
		give         []float64
		wantGap      float64
		wantBisector float64
	}{
		{
			name:         "two opposite",
			give:         []float64{0, math.Pi},
			wantGap:      math.Pi,
			wantBisector: 3 * math.Pi / 2, // both gaps are π; ties resolve to the wrap gap [π, 2π)
		},
		{
			name:         "three quarters occupied",
			give:         []float64{0, math.Pi / 2, math.Pi},
			wantGap:      math.Pi,
			wantBisector: 3 * math.Pi / 2,
		},
		{
			name:         "cluster leaves big gap",
			give:         []float64{0.1, 0.2, 0.3},
			wantGap:      TwoPi - 0.2,
			wantBisector: NormalizeAngle(0.3 + (TwoPi-0.2)/2),
		},
		{
			name:    "even square",
			give:    []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2},
			wantGap: math.Pi / 2,
		},
		{
			name:    "duplicates collapse",
			give:    []float64{1, 1, 1, 1 + math.Pi},
			wantGap: math.Pi,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gap, bisector := MaxCircularGap(tt.give)
			if !almostEqual(gap, tt.wantGap, 1e-9) {
				t.Errorf("gap = %v, want %v", gap, tt.wantGap)
			}
			if tt.wantBisector != 0 && !almostEqual(AngularDistance(bisector, tt.wantBisector), 0, 1e-9) {
				t.Errorf("bisector = %v, want %v", bisector, tt.wantBisector)
			}
		})
	}
}

func TestMaxCircularGapDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	MaxCircularGap(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestMaxCircularGapBisectorIsInsideGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		angles := make([]float64, n)
		for i := range angles {
			angles[i] = rng.Float64() * TwoPi
		}
		gap, bisector := MaxCircularGap(angles)
		// The bisector must be at least gap/2 away from every angle.
		for _, a := range angles {
			if d := AngularDistance(bisector, a); d < gap/2-1e-9 {
				t.Fatalf("trial %d: bisector %v within %v of angle %v (gap %v)",
					trial, bisector, d, a, gap)
			}
		}
	}
}

func TestMaxCircularGapSumProperty(t *testing.T) {
	// The maximum gap of n ≥ 2 angles is at least 2π/n (pigeonhole)
	// and at most 2π.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		angles := make([]float64, n)
		for i := range angles {
			angles[i] = rng.Float64() * TwoPi
		}
		gap, _ := MaxCircularGap(angles)
		return gap >= TwoPi/float64(n)-1e-9 && gap <= TwoPi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortAngles(t *testing.T) {
	got := SortAngles([]float64{-math.Pi / 2, 0, 3 * math.Pi})
	want := []float64{0, math.Pi, 3 * math.Pi / 2}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCoversAllDirections(t *testing.T) {
	square := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	tests := []struct {
		name   string
		angles []float64
		theta  float64
		want   bool
	}{
		{name: "square with theta quarter", angles: square, theta: math.Pi / 4, want: true},
		{name: "square with small theta", angles: square, theta: math.Pi / 8, want: false},
		{name: "empty never covers", angles: nil, theta: math.Pi, want: false},
		{name: "single with theta pi", angles: []float64{1}, theta: math.Pi, want: true},
		{name: "single with theta below pi", angles: []float64{1}, theta: math.Pi - 0.01, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CoversAllDirections(tt.angles, tt.theta); got != tt.want {
				t.Errorf("CoversAllDirections(%v, %v) = %v, want %v",
					tt.angles, tt.theta, got, tt.want)
			}
		})
	}
}
