package geom

import (
	"math"
	"testing"
)

func FuzzNormalizeAngle(f *testing.F) {
	f.Add(0.0)
	f.Add(math.Pi)
	f.Add(-math.Pi / 2)
	f.Add(1e9)
	f.Add(-1e12)
	f.Add(TwoPi)
	f.Fuzz(func(t *testing.T, a float64) {
		got := NormalizeAngle(a)
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return
		}
		if got < 0 || got >= TwoPi {
			t.Fatalf("NormalizeAngle(%v) = %v out of [0, 2π)", a, got)
		}
		// Idempotence.
		if again := NormalizeAngle(got); again != got {
			t.Fatalf("not idempotent: %v → %v → %v", a, got, again)
		}
	})
}

func FuzzAngularDistance(f *testing.F) {
	f.Add(0.0, math.Pi)
	f.Add(1.0, 1.0)
	f.Add(-3.0, 7.0)
	f.Fuzz(func(t *testing.T, a, b float64) {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return
		}
		d := AngularDistance(a, b)
		if d < 0 || d > math.Pi+1e-9 {
			t.Fatalf("AngularDistance(%v, %v) = %v out of [0, π]", a, b, d)
		}
		if sym := AngularDistance(b, a); math.Abs(d-sym) > 1e-9 {
			t.Fatalf("asymmetric: %v vs %v", d, sym)
		}
	})
}

func FuzzSectorContains(f *testing.F) {
	f.Add(0.0, 1.0, 0.5)
	f.Add(5.5, 2.0, 0.1)
	f.Add(0.0, TwoPi, 3.0)
	f.Fuzz(func(t *testing.T, start, width, angle float64) {
		if math.IsNaN(start) || math.IsNaN(angle) || math.Abs(start) > 1e9 || math.Abs(angle) > 1e9 {
			return
		}
		width = math.Mod(math.Abs(width), TwoPi-0.02) + 0.01
		s, err := NewSector(start, width)
		if err != nil {
			t.Fatalf("NewSector(%v, %v): %v", start, width, err)
		}
		// Definition consistency.
		want := CCWDelta(angle, s.Start) <= s.Width
		if got := s.Contains(angle); got != want {
			t.Fatalf("Contains(%v) = %v, definition says %v", angle, got, want)
		}
		// The bisector is always inside; the antipode of the bisector is
		// outside for widths below 2π.
		if !s.Contains(s.Bisector()) {
			t.Fatal("sector does not contain its bisector")
		}
		if s.Width < math.Pi && s.Contains(s.Bisector()+math.Pi) {
			t.Fatal("narrow sector contains the opposite of its bisector")
		}
	})
}

func FuzzMinArcCoverageDepth(f *testing.F) {
	f.Add(0.5, 1.0, 2.0, 3.0, 0.7)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.1)
	f.Fuzz(func(t *testing.T, a, b, c, d, half float64) {
		for _, v := range []float64{a, b, c, d, half} {
			if math.IsNaN(v) || math.Abs(v) > 1e9 {
				return
			}
		}
		half = math.Mod(math.Abs(half), math.Pi)
		centers := []float64{a, b, c, d}
		depth, witness := MinArcCoverageDepth(centers, half)
		if depth < 0 || depth > len(centers) {
			t.Fatalf("depth %d out of range", depth)
		}
		// The witness must attain the reported depth, allowing a
		// tolerance band for arcs whose boundary lands within rounding
		// distance of the witness (normalizing large center values
		// perturbs arc endpoints by a few ulps).
		const tol = 1e-9
		countLo, countHi := 0, 0
		for _, ctr := range centers {
			dist := AngularDistance(witness, ctr)
			if half >= math.Pi || dist <= half-tol {
				countLo++
			}
			if half >= math.Pi || dist <= half+tol {
				countHi++
			}
		}
		if depth < countLo || depth > countHi {
			t.Fatalf("witness %v depth %d outside [%d, %d] (half=%v centers=%v)",
				witness, depth, countLo, countHi, half, centers)
		}
		// Consistency with the gap test, away from the boundary.
		gap, _ := MaxCircularGap(centers)
		if math.Abs(gap-2*half) > tol && (depth >= 1) != (gap <= 2*half) {
			t.Fatalf("depth %d vs gap %v inconsistent at half=%v", depth, gap, half)
		}
	})
}
