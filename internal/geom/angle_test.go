package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct {
		name string
		give float64
		want float64
	}{
		{name: "zero", give: 0, want: 0},
		{name: "in range", give: 1.5, want: 1.5},
		{name: "two pi", give: TwoPi, want: 0},
		{name: "negative quarter", give: -math.Pi / 2, want: 3 * math.Pi / 2},
		{name: "negative full", give: -TwoPi, want: 0},
		{name: "large positive", give: 5 * TwoPi, want: 0},
		{name: "large negative offset", give: -5*TwoPi + 1, want: 1},
		{name: "just below two pi", give: TwoPi - 1e-15, want: TwoPi - 1e-15},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NormalizeAngle(tt.give)
			if !almostEqual(got, tt.want, eps) {
				t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		got := NormalizeAngle(a)
		return got >= 0 && got < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeAngleNonFinite(t *testing.T) {
	if !math.IsNaN(NormalizeAngle(math.NaN())) {
		t.Error("NormalizeAngle(NaN) should be NaN")
	}
	if !math.IsInf(NormalizeAngle(math.Inf(1)), 1) {
		t.Error("NormalizeAngle(+Inf) should be +Inf")
	}
}

func TestAngularDistance(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{name: "identical", a: 1, b: 1, want: 0},
		{name: "quarter", a: 0, b: math.Pi / 2, want: math.Pi / 2},
		{name: "opposite", a: 0, b: math.Pi, want: math.Pi},
		{name: "wrap short way", a: 0.1, b: TwoPi - 0.1, want: 0.2},
		{name: "unnormalized inputs", a: -math.Pi / 2, b: math.Pi / 2, want: math.Pi},
		{name: "three quarters", a: 0, b: 3 * math.Pi / 2, want: math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AngularDistance(tt.a, tt.b)
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("AngularDistance(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestAngularDistanceProperties(t *testing.T) {
	symmetric := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return almostEqual(AngularDistance(a, b), AngularDistance(b, a), 1e-9)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	bounded := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		d := AngularDistance(a, b)
		return d >= 0 && d <= math.Pi+eps
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("bounds: %v", err)
	}
}

func TestAngleDiff(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{name: "zero", a: 1, b: 1, want: 0},
		{name: "plus quarter", a: math.Pi / 2, b: 0, want: math.Pi / 2},
		{name: "minus quarter", a: 0, b: math.Pi / 2, want: -math.Pi / 2},
		{name: "opposite is plus pi", a: math.Pi, b: 0, want: math.Pi},
		{name: "wrap", a: 0.1, b: TwoPi - 0.1, want: 0.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AngleDiff(tt.a, tt.b)
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("AngleDiff(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestAngleDiffMagnitudeMatchesDistance(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 {
			return true
		}
		return almostEqual(math.Abs(AngleDiff(a, b)), AngularDistance(a, b), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCWDelta(t *testing.T) {
	tests := []struct {
		name string
		a, b float64
		want float64
	}{
		{name: "same", a: 1, b: 1, want: 0},
		{name: "forward quarter", a: math.Pi / 2, b: 0, want: math.Pi / 2},
		{name: "backward quarter goes long way", a: 0, b: math.Pi / 2, want: 3 * math.Pi / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := CCWDelta(tt.a, tt.b)
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("CCWDelta(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	for _, deg := range []float64{0, 30, 45, 90, 180, 270, 359.5} {
		if got := Degrees(Radians(deg)); !almostEqual(got, deg, 1e-9) {
			t.Errorf("Degrees(Radians(%v)) = %v", deg, got)
		}
	}
	if got := Radians(180); !almostEqual(got, math.Pi, eps) {
		t.Errorf("Radians(180) = %v, want π", got)
	}
}
