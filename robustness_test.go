package fullview_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"fullview"
)

func TestKCheckedFacade(t *testing.T) {
	k, err := fullview.KNecessaryChecked(math.Pi / 4)
	if err != nil || k != 4 {
		t.Errorf("KNecessaryChecked(π/4) = %d, %v; want 4, nil", k, err)
	}
	if _, err := fullview.KNecessaryChecked(0); !errors.Is(err, fullview.ErrBadTheta) {
		t.Errorf("KNecessaryChecked(0) err = %v, want ErrBadTheta", err)
	}
	k, err = fullview.KSufficientChecked(math.Pi / 4)
	if err != nil || k != 8 {
		t.Errorf("KSufficientChecked(π/4) = %d, %v; want 8, nil", k, err)
	}
	if _, err := fullview.KSufficientChecked(math.NaN()); !errors.Is(err, fullview.ErrBadTheta) {
		t.Errorf("KSufficientChecked(NaN) err = %v, want ErrBadTheta", err)
	}
}

func TestCheckFiniteFacade(t *testing.T) {
	if err := fullview.CheckFinite("q", 1.0); err != nil {
		t.Errorf("CheckFinite(1.0) = %v", err)
	}
	err := fullview.CheckFinite("q", math.NaN(), "n", 3)
	if !errors.Is(err, fullview.ErrNonFinite) {
		t.Fatalf("CheckFinite(NaN) = %v, want ErrNonFinite", err)
	}
	var nf *fullview.NonFiniteError
	if !errors.As(err, &nf) || nf.Quantity != "q" {
		t.Errorf("NonFiniteError not populated: %v", err)
	}
}

func TestResumableSurveyFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	header := fullview.SurveyCheckpointHeader("facade-test", 9, 6, "demo")
	journal, err := fullview.OpenCheckpoint(path, header)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(trial int, r *fullview.RNG) (float64, error) {
		return float64(trial) + r.Float64(), nil
	}
	got, err := fullview.RunResumableSurvey(context.Background(), journal, 9, 6, 2, fn)
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and resume: everything is journaled, so fn must not run.
	journal2, err := fullview.OpenCheckpoint(path, header)
	if err != nil {
		t.Fatal(err)
	}
	if !journal2.Complete() {
		t.Errorf("journal not complete after full run: %d/6", journal2.Len())
	}
	resumed, err := fullview.RunResumableSurvey(context.Background(), journal2, 9, 6, 2,
		func(trial int, r *fullview.RNG) (float64, error) {
			t.Errorf("trial %d re-executed despite complete journal", trial)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, got) {
		t.Errorf("resumed results differ: %v vs %v", resumed, got)
	}

	// A mismatched header must be refused.
	bad := header
	bad.Seed = 10
	if _, err := fullview.OpenCheckpoint(path, bad); !errors.Is(err, fullview.ErrCheckpointMismatch) {
		t.Errorf("changed seed: err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestTransientFacade(t *testing.T) {
	err := fullview.Transient(errors.New("socket reset"))
	if !errors.Is(err, fullview.ErrTransient) {
		t.Errorf("Transient wrap lost ErrTransient: %v", err)
	}
}
