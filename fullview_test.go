package fullview_test

import (
	"math"
	"testing"

	"fullview"
)

// TestQuickstartFlow exercises the documented public API end to end.
func TestQuickstartFlow(t *testing.T) {
	profile, err := fullview.Homogeneous(0.25, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 800, fullview.NewRNG(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 800 {
		t.Fatalf("deployed %d sensors", net.Len())
	}
	checker, err := fullview.NewChecker(net, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := fullview.DenseGrid(fullview.UnitTorus, 800)
	if err != nil {
		t.Fatal(err)
	}
	stats := checker.SurveyRegion(grid)
	if stats.Points != len(grid) {
		t.Fatalf("stats over %d points, want %d", stats.Points, len(grid))
	}
	if f := stats.FullViewFraction(); f < 0 || f > 1 {
		t.Errorf("fraction out of range: %v", f)
	}
	// Ordering invariant via the public API too.
	if stats.SufficientFraction() > stats.FullViewFraction() ||
		stats.FullViewFraction() > stats.NecessaryFraction() {
		t.Error("condition ordering violated")
	}
}

func TestPublicAnalyticSurface(t *testing.T) {
	nec, err := fullview.CSANecessary(1000, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	suf, err := fullview.CSASufficient(1000, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	if !(nec > 0 && suf > nec) {
		t.Errorf("CSAs inconsistent: nec=%v suf=%v", nec, suf)
	}
	one, err := fullview.OneCoverageCSA(1000)
	if err != nil {
		t.Fatal(err)
	}
	kcov, err := fullview.KCoverageSufficientArea(1000, fullview.KNecessary(math.Pi/4))
	if err != nil {
		t.Fatal(err)
	}
	if !(one > 0 && kcov > one) {
		t.Errorf("baselines inconsistent: one=%v kcov=%v", one, kcov)
	}
	if fullview.KNecessary(math.Pi/4) != 4 || fullview.KSufficient(math.Pi/4) != 8 {
		t.Error("sector counts wrong")
	}

	profile, err := fullview.NewProfile(
		fullview.GroupSpec{Fraction: 0.5, Radius: 0.1, Aperture: math.Pi / 2},
		fullview.GroupSpec{Fraction: 0.5, Radius: 0.2, Aperture: math.Pi / 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	fail, err := fullview.UniformNecessaryFailure(profile, 1000, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	sufFail, err := fullview.UniformSufficientFailure(profile, 1000, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	if fail < 0 || fail > 1 || sufFail < fail {
		t.Errorf("uniform failure probs inconsistent: %v %v", fail, sufFail)
	}
	pn, err := fullview.PoissonPN(profile, 1000, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := fullview.PoissonPS(profile, 1000, math.Pi/4)
	if err != nil {
		t.Fatal(err)
	}
	if pn < 0 || pn > 1 || ps > pn {
		t.Errorf("Poisson probs inconsistent: P_N=%v P_S=%v", pn, ps)
	}
	if got := fullview.ExpectedCoverageCount(profile, 1000); got <= 0 {
		t.Errorf("ExpectedCoverageCount = %v", got)
	}
}

func TestPublicBarrierSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.3, 2*math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 2000, fullview.NewRNG(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	checker, err := fullview.NewChecker(net, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := fullview.SurveyBarrier(checker, fullview.HorizontalBarrier(0.4), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Covered {
		t.Errorf("dense omnidirectional network should cover the barrier: %+v", stats)
	}
	diag, err := fullview.NewBarrier(fullview.V(0, 0), fullview.V(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(diag.Length()-math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal length = %v", diag.Length())
	}
}

func TestPublicProbSenseSurface(t *testing.T) {
	profile, err := fullview.Homogeneous(0.25, math.Pi)
	if err != nil {
		t.Fatal(err)
	}
	net, err := fullview.DeployUniform(fullview.UnitTorus, profile, 500, fullview.NewRNG(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	eval, err := fullview.NewProbEvaluator(net,
		fullview.ExpDecayModel{CertainFraction: 0.6, Decay: 2}, math.Pi/3)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := eval.Evaluate(fullview.V(0.5, 0.5), 180)
	if err != nil {
		t.Fatal(err)
	}
	if prof.WorstProb < 0 || prof.WorstProb > 1 || prof.MeanProb < prof.WorstProb {
		t.Errorf("profile inconsistent: %+v", prof)
	}
}

func TestPublicLatticeAndCustomNetwork(t *testing.T) {
	profile, err := fullview.Homogeneous(0.2, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := fullview.SquareLattice(fullview.UnitTorus, profile, 6, fullview.NewRNG(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sq.Len() != 36 {
		t.Errorf("square lattice size = %d", sq.Len())
	}
	tri, err := fullview.TriangularLattice(fullview.UnitTorus, profile, 0.2, fullview.NewRNG(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if tri.Len() == 0 {
		t.Error("triangular lattice empty")
	}
	custom, err := fullview.NewNetwork(fullview.UnitTorus, []fullview.Camera{
		{Pos: fullview.V(0.5, 0.5), Orient: 0, Radius: 0.2, Aperture: math.Pi / 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if custom.Len() != 1 {
		t.Error("custom network assembly failed")
	}
	tor, err := fullview.NewTorus(2)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Side() != 2 {
		t.Errorf("Side = %v", tor.Side())
	}
	pois, err := fullview.DeployPoisson(fullview.UnitTorus, profile, 100, fullview.NewRNG(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	_ = pois.Len()
	pts, err := fullview.GridPoints(fullview.UnitTorus, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Errorf("GridPoints = %d", len(pts))
	}
}
