package fullview

import (
	"context"

	"fullview/internal/analytic"
	"fullview/internal/checkpoint"
	"fullview/internal/experiment"
	"fullview/internal/numeric"
	"fullview/internal/sweep"
)

// Fault-tolerance types. A long Monte-Carlo campaign fails in three
// characteristic ways — a trial panics, the process is killed, or a
// formula quietly degenerates to NaN — and each has a structured
// counterpart here: PanicError, Journal, and NonFiniteError. DESIGN.md
// ("Failure model") documents the policies.
type (
	// PanicError is a panic recovered inside a parallel sweep or
	// experiment trial, carrying the worker, item index, panicking
	// value, and captured stack. The panic never crosses goroutine
	// boundaries; it surfaces as this ordinary error.
	PanicError = sweep.PanicError
	// NonFiniteError reports a NaN or ±Inf detected by a numeric-health
	// guard, naming the quantity and the inputs that produced it. It
	// unwraps to ErrNonFinite.
	NonFiniteError = numeric.NonFiniteError
	// CheckpointHeader identifies what a checkpoint journal belongs to;
	// OpenCheckpoint refuses a journal whose header does not match.
	CheckpointHeader = checkpoint.Header
	// Journal is an append-only JSONL record of completed trial
	// results with atomic (temp-file + rename) writes.
	Journal = checkpoint.Journal
	// RetryPolicy bounds per-trial retries with capped exponential
	// backoff; see Transient and ErrTransient for classification.
	RetryPolicy = experiment.RetryPolicy
)

// Fault-tolerance sentinels.
var (
	// ErrNonFinite matches any numeric-health violation via errors.Is.
	ErrNonFinite = numeric.ErrNonFinite
	// ErrCheckpointMismatch reports a journal whose header disagrees
	// with the requested run (different seed, kind, trial count, or
	// parameters).
	ErrCheckpointMismatch = checkpoint.ErrMismatch
	// ErrCheckpointCorrupt reports an unparseable journal interior.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrTransient classifies an error as retryable under the default
	// RetryPolicy; wrap failures with Transient to opt in.
	ErrTransient = experiment.ErrTransient
	// ErrBadTheta reports an effective angle outside (0, π].
	ErrBadTheta = analytic.ErrBadTheta
)

// Transient marks err retryable under the default RetryPolicy
// classifier.
func Transient(err error) error { return experiment.Transient(err) }

// OpenCheckpoint opens (or creates) the trial journal at path. A
// journal that exists must carry exactly header h (its Version field is
// filled in automatically); a torn final line — the signature of a
// crash mid-append — is dropped and rewritten by the next Record.
func OpenCheckpoint(path string, h CheckpointHeader) (*Journal, error) {
	return checkpoint.Open(path, h)
}

// KNecessaryChecked is KNecessary with validation: it rejects
// θ ∉ (0, π] (including NaN and θ small enough to overflow the sector
// count) with ErrBadTheta instead of returning garbage.
func KNecessaryChecked(theta float64) (int, error) {
	return analytic.KNecessaryChecked(theta)
}

// KSufficientChecked is KSufficient with the same validation as
// KNecessaryChecked.
func KSufficientChecked(theta float64) (int, error) {
	return analytic.KSufficientChecked(theta)
}

// CheckFinite validates v is neither NaN nor ±Inf, returning a
// NonFiniteError naming quantity (with optional alternating key/value
// inputs) otherwise.
func CheckFinite(quantity string, v float64, inputs ...any) error {
	return numeric.Check(quantity, v, inputs...)
}

// SurveyCheckpointHeader returns the journal header for a resumable
// region survey of net's coverage: callers running their own
// checkpointed sweeps over a Checker should derive headers the same
// way so journals are refused when any run parameter changes.
func SurveyCheckpointHeader(kind string, seed uint64, trials int, params string) CheckpointHeader {
	return CheckpointHeader{Kind: kind, Seed: seed, Trials: trials, Params: params}
}

// RunResumableSurvey journals a trials-way partitioned computation: fn
// is called once per missing trial index with a deterministic
// per-trial RNG stream, each completed result is durably recorded in
// journal, and already-journaled trials are restored instead of
// re-executed. The returned slice is bit-identical to a run that never
// checkpointed, at any worker count (workers ≤ 0 selects GOMAXPROCS).
func RunResumableSurvey[T any](ctx context.Context, journal *Journal, seed uint64, trials, workers int, fn func(trial int, r *RNG) (T, error)) ([]T, error) {
	return experiment.RunResumable(ctx, journal, seed, trials, workers, fn)
}
